package trace

import (
	"errors"
	"fmt"
	"sort"

	"cloudburst/internal/cost"
)

// The auditor replays an event stream and recomputes the paper's SLA
// metrics from scratch — makespan (eq. 7), speedup (eq. 10), burst ratio
// (eq. 12), utilization (eq. 9), and the OO series (eq. 3–6) — without
// consulting the engine's accounting. It also verifies, per bursted job,
// the slack condition the job was admitted under: the estimated round trip
// had to fit inside the admission threshold, and the realized round trip is
// compared against both to flag mispredictions of the QRSM / bandwidth
// models. Any structural inconsistency in the stream (duplicate deliveries,
// time travel, bursts with missing transfer legs, deliveries that no
// placement explains) is reported as an Issue.

// AuditOptions tunes the replay.
type AuditOptions struct {
	// OOSampleInterval is the OO sampling grid in seconds (default 120,
	// matching the report default).
	OOSampleInterval float64
	// OOTolerance is t_l in jobs (default 0).
	OOTolerance int
	// Epsilon absorbs float round-off in admission checks (default 1e-9).
	Epsilon float64
}

func (o AuditOptions) withDefaults() AuditOptions {
	if o.OOSampleInterval == 0 {
		o.OOSampleInterval = 120
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// SlackCheck is the audit of one bursted job's admission.
type SlackCheck struct {
	JobID int
	Seq   int
	// EstEC is the estimated round trip the scheduler admitted the burst
	// with; Threshold is what it was compared against (the slack).
	EstEC     float64
	Threshold float64
	// Realized is the measured round trip: delivery time minus admission
	// time.
	Realized float64
	// Violated means the realized round trip exceeded the admission
	// threshold — the burst landed on the critical path despite the slack
	// rule, i.e. the models mispredicted.
	Violated bool
}

// EstimateError returns realized minus estimated round trip (positive:
// the models were optimistic).
func (c SlackCheck) EstimateError() float64 { return c.Realized - c.EstEC }

// AuditPoint is one sample of the recomputed OO series.
type AuditPoint struct {
	T float64
	V float64
}

// Audit is the auditor's independent view of a run.
type Audit struct {
	// Recomputed SLA metrics.
	Jobs       int
	Makespan   float64
	Speedup    float64
	BurstRatio float64
	ICUtil     float64
	ECUtil     float64
	OOSeries   []AuditPoint

	// Slack verification over every delivered burst. Checked counts the
	// gated admissions verified; Mispredictions lists those whose realized
	// round trip overran the admission threshold; AdmissionViolations lists
	// bursts whose *estimate* already exceeded the threshold when admitted —
	// a scheduler bug, not a model error.
	Checks              []SlackCheck
	Checked             int
	Mispredictions      []SlackCheck
	AdmissionViolations []SlackCheck

	// Cost replay, populated when the stream carries rental/accrual events.
	// CostRental is the total rental spend re-derived from the paired
	// RentalStarted/RentalEnded events through the shared billing formula
	// (cost.BillSpan) — every carried bill and running total is compared to
	// the recomputation within Epsilon. CostCommitted is the independently
	// summed CostAccrued spend, and CostBudget the budget RunConfigured
	// announced (0 = unlimited). RentalsOpen counts rentals never ended —
	// zero for finite runs, which close out their fleets; a suspended or
	// streaming prefix legitimately leaves rentals open.
	CostAudited   bool
	CostRental    float64
	CostCommitted float64
	CostBudget    float64
	CostChecked   int
	RentalsOpen   int

	// Issues are structural inconsistencies in the stream itself. A healthy
	// engine run always audits clean.
	Issues []string

	// Stream accounting.
	Events     int
	Arrivals   int
	Chunks     int
	Deliveries int
	Bursted    int

	// Sharded-run replay: commit losers (PlacementConflict) and the
	// re-placement rounds they forced (PlacementRetried), recounted
	// independently so engine Result counters can be cross-checked against
	// the stream. Every conflicted job must re-resolve to a committed
	// placement (or be re-chunked); a leftover is an Issue.
	Conflicts    int
	Replacements int
}

// OK reports whether the stream had no structural issues.
func (a *Audit) OK() bool { return len(a.Issues) == 0 }

// Summary renders a one-screen audit result.
func (a *Audit) Summary() string {
	s := fmt.Sprintf(
		"audit over %d events: %d jobs (%d arrivals, %d chunks)\n"+
			"  recomputed  makespan %.0fs  speedup %.2f  burst %.2f  IC util %.1f%%  EC util %.1f%%\n"+
			"  slack       %d/%d bursts verified, %d mispredicted, %d admission violations\n",
		a.Events, a.Deliveries, a.Arrivals, a.Chunks,
		a.Makespan, a.Speedup, a.BurstRatio, 100*a.ICUtil, 100*a.ECUtil,
		a.Checked, a.Bursted, len(a.Mispredictions), len(a.AdmissionViolations))
	if a.CostAudited {
		budget := "unlimited"
		if a.CostBudget > 0 {
			budget = fmt.Sprintf("%.4f", a.CostBudget)
		}
		s += fmt.Sprintf("  cost        rental %.4f over %d bills  committed %.4f  budget %s  open rentals %d\n",
			a.CostRental, a.CostChecked, a.CostCommitted, budget, a.RentalsOpen)
	}
	if a.Conflicts > 0 || a.Replacements > 0 {
		s += fmt.Sprintf("  shards      %d placement conflicts, %d re-placements, all resolved\n",
			a.Conflicts, a.Replacements)
	}
	if len(a.Issues) == 0 {
		return s + "  integrity  clean\n"
	}
	s += fmt.Sprintf("  integrity  %d issue(s):\n", len(a.Issues))
	for _, is := range a.Issues {
		s += "    - " + is + "\n"
	}
	return s
}

func (a *Audit) issuef(format string, args ...any) {
	a.Issues = append(a.Issues, fmt.Sprintf(format, args...))
}

// errEmptyStream is returned for a stream with no events at all.
var errEmptyStream = errors.New("trace: cannot audit an empty event stream")

// AuditEvents replays the stream and returns the independent audit. The
// stream may be in raw emission order.
func AuditEvents(events []Event, opt AuditOptions) (*Audit, error) {
	if len(events) == 0 {
		return nil, errEmptyStream
	}
	opt = opt.withDefaults()
	a := &Audit{Events: len(events)}

	// --- Pass 1: index the stream. -------------------------------------
	var cfg *Event
	var tseq float64
	deliveries := make(map[int]Event) // by Seq
	var deliveredOrder []Event
	admissions := make(map[int]Event) // job ID → latest EC admission event
	movedToIC := make(map[int]bool)   // job ID → stolen back after admission
	placements := 0
	uploadEnd := make(map[int]float64)   // job ID → last UploadEnd time
	downloadEnd := make(map[int]float64) // job ID → last DownloadEnd time

	type machineKey struct {
		cluster string
		machine int
	}
	type interval struct{ start, end float64 }
	openCompute := make(map[machineKey]Event)
	intervals := make(map[machineKey][]interval)
	machineOrder := []machineKey{} // first-seen order per cluster machine

	// Elastic-EC rental reconstruction. A fatal EC MachineFailed (spot
	// revocation) ends a rental the same way a drain does; once any EC
	// machine is revoked the fixed-fleet utilization denominator is wrong,
	// so the auditor switches to the rented basis (ecFatal).
	type rental struct{ added, retired float64 } // retired < 0: still active
	ecRentals := make(map[int]*rental)           // machine ID → rental span
	ecFatal := false

	// Cost replay: every RentalEnded bill is re-derived from its paired
	// RentalStarted through the same billing-interval rounding the engine's
	// meter uses, and both amount and running total must agree within
	// Epsilon. Committed spend is summed independently from CostAccrued.
	var billingSec float64
	openRent := make(map[machineKey]Event)
	var rentalSum, committedSum float64

	// Sharded-commit replay: conflicted jobs must re-resolve, snapshot
	// epochs must be monotone in stream order, and no epoch may hand the
	// same primary-EC machine slot to two committed placements.
	unresolved := make(map[int]bool)
	lastEpoch := 0
	type claimKey struct{ epoch, machine int }
	claims := make(map[claimKey]int)

	for _, ev := range events {
		if ev.Epoch > 0 {
			if ev.Epoch < lastEpoch {
				a.issuef("%s for job %d at t=%.3f carries stale epoch %d after epoch %d",
					ev.Type, ev.JobID, ev.T, ev.Epoch, lastEpoch)
			} else {
				lastEpoch = ev.Epoch
			}
		}
		switch ev.Type {
		case RunConfigured:
			if cfg != nil {
				a.issuef("duplicate RunConfigured at t=%.3f", ev.T)
				continue
			}
			c := ev
			cfg = &c
			billingSec = ev.BillingSec
			a.CostBudget = ev.Budget
			for m := 0; m < ev.ECMachines; m++ {
				ecRentals[m] = &rental{added: ev.T, retired: -1}
			}
		case JobArrived:
			a.Arrivals++
			tseq += ev.StdSeconds
		case Chunked:
			a.Chunks++
			delete(unresolved, ev.Parent)
		case PlacementDecided:
			placements++
			delete(unresolved, ev.JobID)
			if ev.Epoch > 0 && ev.Where == "EC" && ev.Site == 0 && ev.Machine >= 0 {
				k := claimKey{ev.Epoch, ev.Machine}
				if other, taken := claims[k]; taken {
					a.issuef("epoch %d hands EC machine %d to jobs %d and %d",
						ev.Epoch, ev.Machine, other, ev.JobID)
				}
				claims[k] = ev.JobID
			}
			if ev.Where == "EC" {
				admissions[ev.JobID] = ev
			}
		case PlacementConflict:
			a.Conflicts++
			unresolved[ev.JobID] = true
		case PlacementRetried:
			a.Replacements++
		case Rescheduled:
			switch ev.To {
			case "EC":
				admissions[ev.JobID] = ev
				delete(movedToIC, ev.JobID)
			case "IC":
				movedToIC[ev.JobID] = true
			}
		case JobRetried:
			// A retry that re-passed the slack rule is a fresh admission the
			// auditor verifies against the retry time; an ungated retry
			// (download redo, IC resubmit) clears the stale threshold instead.
			if ev.To == "EC" {
				admissions[ev.JobID] = ev
				delete(movedToIC, ev.JobID)
			}
		case JobFellBack:
			movedToIC[ev.JobID] = true
		case MachineFailed:
			if ev.Cluster == "ec" && ev.Fatal {
				ecFatal = true
				if r, ok := ecRentals[ev.Machine]; ok && r.retired < 0 {
					r.retired = ev.T
				} else if !ok {
					a.issuef("fatal MachineFailed for unknown EC machine %d at t=%.3f", ev.Machine, ev.T)
				}
			}
		case UploadEnd:
			uploadEnd[ev.JobID] = ev.T
		case DownloadEnd:
			downloadEnd[ev.JobID] = ev.T
		case ComputeStart:
			k := machineKey{ev.Cluster, ev.Machine}
			if _, open := openCompute[k]; open {
				a.issuef("ComputeStart on busy machine %s/%d at t=%.3f", ev.Cluster, ev.Machine, ev.T)
			}
			openCompute[k] = ev
		case ComputeEnd:
			k := machineKey{ev.Cluster, ev.Machine}
			st, open := openCompute[k]
			if !open {
				a.issuef("ComputeEnd without start on %s/%d at t=%.3f", ev.Cluster, ev.Machine, ev.T)
				continue
			}
			delete(openCompute, k)
			if ev.T < st.T {
				a.issuef("compute interval on %s/%d ends at %.3f before start %.3f", ev.Cluster, ev.Machine, ev.T, st.T)
				continue
			}
			if _, seen := intervals[k]; !seen {
				machineOrder = append(machineOrder, k)
			}
			intervals[k] = append(intervals[k], interval{st.T, ev.T})
		case AutoscaleBoot:
			ecRentals[ev.Machine] = &rental{added: ev.T, retired: -1}
		case AutoscaleDrain:
			if r, ok := ecRentals[ev.Machine]; ok {
				r.retired = ev.T
			} else {
				a.issuef("AutoscaleDrain of unknown machine %d at t=%.3f", ev.Machine, ev.T)
			}
		case RentalStarted:
			a.CostAudited = true
			k := machineKey{ev.Cluster, ev.Machine}
			if _, open := openRent[k]; open {
				a.issuef("machine %s/%d rented at t=%.3f while already rented", ev.Cluster, ev.Machine, ev.T)
			}
			openRent[k] = ev
		case RentalEnded:
			a.CostAudited = true
			k := machineKey{ev.Cluster, ev.Machine}
			st, open := openRent[k]
			if !open {
				a.issuef("rental on %s/%d ended at t=%.3f without a start", ev.Cluster, ev.Machine, ev.T)
				continue
			}
			delete(openRent, k)
			want := cost.BillSpan(st.T, ev.T, billingSec, st.Rate)
			if d := ev.Amount - want; d > opt.Epsilon || d < -opt.Epsilon {
				a.issuef("rental bill on %s/%d carries %.9f, replay computes %.9f",
					ev.Cluster, ev.Machine, ev.Amount, want)
			}
			rentalSum += want
			a.CostChecked++
			if d := ev.Total - rentalSum; d > opt.Epsilon || d < -opt.Epsilon {
				a.issuef("rental running total %.9f at t=%.3f, replay sums %.9f", ev.Total, ev.T, rentalSum)
			}
		case CostAccrued:
			a.CostAudited = true
			if ev.Amount < -opt.Epsilon {
				a.issuef("negative cost accrual %.9f at t=%.3f", ev.Amount, ev.T)
			}
			committedSum += ev.Amount
			if d := ev.Total - committedSum; d > opt.Epsilon || d < -opt.Epsilon {
				a.issuef("committed running total %.9f at t=%.3f, replay sums %.9f", ev.Total, ev.T, committedSum)
			}
			if a.CostBudget > 0 && ev.Total > a.CostBudget+opt.Epsilon {
				a.issuef("committed spend %.9f at t=%.3f exceeds budget %.9f", ev.Total, ev.T, a.CostBudget)
			}
		case JobDelivered:
			if prev, dup := deliveries[ev.Seq]; dup {
				a.issuef("duplicate delivery for seq %d (jobs %d and %d)", ev.Seq, prev.JobID, ev.JobID)
				continue
			}
			if ev.T < ev.Arrival {
				a.issuef("seq %d (job %d) delivered at %.3f before arrival %.3f", ev.Seq, ev.JobID, ev.T, ev.Arrival)
			}
			deliveries[ev.Seq] = ev
			deliveredOrder = append(deliveredOrder, ev)
		}
	}
	for k := range openCompute {
		a.issuef("compute interval on %s/%d never ended", k.cluster, k.machine)
	}
	for id := range unresolved {
		a.issuef("job %d lost a placement conflict and was never re-placed", id)
	}
	a.CostRental = rentalSum
	a.CostCommitted = committedSum
	a.RentalsOpen = len(openRent)

	a.Deliveries = len(deliveredOrder)
	if a.Deliveries == 0 {
		a.issuef("stream contains no deliveries")
		return a, nil
	}
	if cfg == nil {
		a.issuef("stream has no RunConfigured event; utilization not audited")
	}
	if placements > 0 && placements != a.Deliveries {
		a.issuef("%d placements but %d deliveries", placements, a.Deliveries)
	}
	if a.Arrivals > 0 {
		// Each chunked parent is replaced by its chunks, so deliveries must
		// equal arrivals plus chunks minus the distinct parents split.
		parents := make(map[int]bool)
		for _, ev := range events {
			if ev.Type == Chunked {
				parents[ev.Parent] = true
			}
		}
		if want := a.Arrivals + a.Chunks - len(parents); want != a.Deliveries {
			a.issuef("job accounting: %d arrivals + %d chunks - %d split parents = %d, but %d delivered",
				a.Arrivals, a.Chunks, len(parents), want, a.Deliveries)
		}
	}

	// --- Makespan, speedup, burst ratio (eq. 7, 10, 12). ----------------
	minArr := deliveredOrder[0].Arrival
	end := deliveredOrder[0].T
	for _, d := range deliveredOrder[1:] {
		if d.Arrival < minArr {
			minArr = d.Arrival
		}
		if d.T > end {
			end = d.T
		}
	}
	a.Makespan = end - minArr
	a.Jobs = a.Deliveries
	for _, d := range deliveredOrder {
		if d.Where == "EC" {
			a.Bursted++
		}
	}
	a.BurstRatio = float64(a.Bursted) / float64(a.Deliveries)
	if tseq > 0 && a.Makespan > 0 {
		a.Speedup = tseq / a.Makespan
	}

	// --- Utilization (eq. 9). -------------------------------------------
	// Busy time is recomputed from the compute intervals alone; denominators
	// come from RunConfigured (fixed fleets) or the reconstructed rental
	// spans (elastic EC).
	if cfg != nil {
		busy := func(cluster string) float64 {
			var total float64
			for _, k := range machineOrder {
				if k.cluster != cluster {
					continue
				}
				var b float64
				for _, iv := range intervals[k] {
					b += iv.end - iv.start
				}
				total += b
			}
			return total
		}
		if cfg.ICMachines > 0 && end > 0 {
			a.ICUtil = busy("ic") / (end * float64(cfg.ICMachines))
		}
		ecBusy := busy("ec")
		if cfg.Autoscale || ecFatal {
			var rented float64
			for _, r := range ecRentals {
				stop := r.retired
				if stop < 0 || stop > end {
					stop = end
				}
				if stop > r.added {
					rented += stop - r.added
				}
			}
			if rented > 0 {
				a.ECUtil = ecBusy / rented
			}
		} else if cfg.ECMachines > 0 && end > 0 {
			a.ECUtil = ecBusy / (end * float64(cfg.ECMachines))
		}
	}

	// --- OO series (eq. 3–6), independently recomputed. -----------------
	a.OOSeries = ooSeries(deliveredOrder, minArr, end, opt.OOSampleInterval, opt.OOTolerance)

	// --- Slack verification per delivered burst. -------------------------
	for _, d := range deliveredOrder {
		if d.Where != "EC" {
			continue
		}
		adm, ok := admissions[d.JobID]
		if !ok {
			a.issuef("seq %d (job %d) delivered from EC but no placement admitted it", d.Seq, d.JobID)
			continue
		}
		if movedToIC[d.JobID] {
			a.issuef("job %d was stolen back to the IC but still delivered from EC", d.JobID)
			continue
		}
		if d.Site == 0 {
			// Primary-EC bursts must show complete transfer legs.
			if _, up := uploadEnd[d.JobID]; !up {
				a.issuef("bursted job %d has no completed upload", d.JobID)
			}
			if _, down := downloadEnd[d.JobID]; !down {
				a.issuef("bursted job %d has no completed download", d.JobID)
			}
		}
		if !adm.Gated {
			continue // no verifiable threshold (e.g. forced placements)
		}
		c := SlackCheck{
			JobID:     d.JobID,
			Seq:       d.Seq,
			EstEC:     adm.EstEC,
			Threshold: adm.Threshold,
			Realized:  d.T - adm.T,
		}
		a.Checked++
		if c.EstEC > c.Threshold+opt.Epsilon {
			a.AdmissionViolations = append(a.AdmissionViolations, c)
		}
		if c.Realized > c.Threshold+opt.Epsilon {
			c.Violated = true
			a.Mispredictions = append(a.Mispredictions, c)
		}
		a.Checks = append(a.Checks, c)
	}

	return a, nil
}

// ooSeries recomputes the OO metric o_t (ordered output bytes, eq. 6) on
// the same sampling grid the report uses, from the deliveries alone.
func ooSeries(deliveries []Event, start, end, interval float64, tol int) []AuditPoint {
	if interval <= 0 || len(deliveries) == 0 {
		return nil
	}
	recs := append([]Event(nil), deliveries...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	var out []AuditPoint
	for t := start; t <= end+interval; t += interval {
		out = append(out, AuditPoint{T: t, V: float64(ooAt(recs, t, tol))})
	}
	return out
}

// ooAt evaluates eq. (3)–(6) at time t over seq-sorted deliveries: the
// cumulative output bytes of completed jobs at or below the largest
// position m_t consumable in order within tolerance tol.
func ooAt(recs []Event, t float64, tol int) int64 {
	mt := -1
	completed := 0
	for _, r := range recs {
		if r.T <= t {
			completed++
			if (r.Seq+1)-tol <= completed && r.Seq > mt {
				mt = r.Seq
			}
		}
	}
	if mt < 0 {
		return 0
	}
	var ot int64
	for _, r := range recs {
		if r.Seq <= mt && r.T <= t {
			ot += r.OutputBytes
		}
	}
	return ot
}
