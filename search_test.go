package cloudburst

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// narrowLinkOpts is the frontier-demo base: a single standard IC machine
// behind a narrow link, where enough transfer jitter drags bursting below
// the sequential baseline (the default testbed's link is too fat for
// mean-preserving jitter alone to cross).
func narrowLinkOpts() Options {
	return Options{
		Scheduler:      OrderPreserving,
		ICMachines:     1,
		UploadMeanBW:   64 * 1024,
		DownloadMeanBW: 96 * 1024,
	}
}

func TestSearchVocabulary(t *testing.T) {
	axes := SearchAxes()
	if want := []string{"jitter", "bandwidth", "arrival-rate", "ec-revoke-mtbf", "budget"}; !reflect.DeepEqual(axes, want) {
		t.Fatalf("axes = %v, want %v", axes, want)
	}
	preds := SearchPredicates()
	if want := []string{"speedup-collapse", "admission-violation", "budget-fallback", "oo-stagnation"}; !reflect.DeepEqual(preds, want) {
		t.Fatalf("predicates = %v, want %v", preds, want)
	}
}

func TestSearchValidation(t *testing.T) {
	valid := SearchSpec{Base: narrowLinkOpts(), Axis: "jitter", Min: 0.1, Max: 1}
	for _, tc := range []struct {
		name  string
		mut   func(*SearchSpec)
		field string
	}{
		{"unknown-axis", func(s *SearchSpec) { s.Axis = "entropy" }, "axis"},
		{"zero-min", func(s *SearchSpec) { s.Min = 0 }, "min"},
		{"negative-min", func(s *SearchSpec) { s.Min = -0.5 }, "min"},
		{"unknown-predicate", func(s *SearchSpec) { s.Predicates = []string{"bogus"} }, "predicates"},
		{"empty-bracket", func(s *SearchSpec) { s.Min, s.Max = 1, 1 }, "axis"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid
			tc.mut(&spec)
			_, err := Search(spec)
			var se *SearchError
			if !errors.As(err, &se) {
				t.Fatalf("err %T is not a *SearchError: %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("err field = %q, want %q (%v)", se.Field, tc.field, err)
			}
		})
	}

	// An unrunnable base is rejected with the core's own typed error
	// before any probe starts.
	spec := valid
	spec.Base.Scheduler = "nope"
	var oe *OptionError
	if _, err := Search(spec); !errors.As(err, &oe) {
		t.Fatalf("invalid base not rejected with *OptionError: %v", err)
	}
}

func TestSearchLocatesJitterFrontier(t *testing.T) {
	spec := SearchSpec{
		Base:       narrowLinkOpts(),
		Axis:       "jitter",
		Min:        0.05,
		Max:        3,
		Tolerance:  0.5,
		Predicates: []string{"speedup-collapse"},
		ClimbSeeds: 2,
	}
	dir := t.TempDir()
	var out1 bytes.Buffer
	var probes, cached int
	rows, err := SearchContext(context.Background(), spec, SearchConfig{
		JSONL:        &out1,
		ManifestPath: filepath.Join(dir, "s.manifest"),
		Progress:     func(p, c int) { probes, cached = p, c },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	row := rows[0]
	if !row.Crossed {
		t.Fatalf("no speedup-collapse crossing on the narrow link: %+v", row)
	}
	if row.HiValue-row.LoValue > spec.Tolerance {
		t.Fatalf("bracket [%g, %g] wider than tolerance %g", row.LoValue, row.HiValue, spec.Tolerance)
	}
	if row.LoHolds || !row.HiHolds {
		t.Fatalf("frontier orientation wrong: low jitter must be healthy, high jitter violating (%+v)", row)
	}
	if row.LoMetrics.Speedup < 1 || row.HiMetrics.Speedup >= 1 {
		t.Fatalf("speedups contradict the verdicts: lo=%g hi=%g", row.LoMetrics.Speedup, row.HiMetrics.Speedup)
	}
	if row.WorstSeed == 0 || row.WorstMargin <= 0 {
		t.Fatalf("climb found no worst seed: %+v", row)
	}
	if cached != 0 {
		t.Fatalf("fresh search reported %d cached probes", cached)
	}

	// Resuming the finished search executes nothing and emits the
	// byte-identical artifact.
	var out2 bytes.Buffer
	rows2, err := SearchContext(context.Background(), spec, SearchConfig{
		JSONL:        &out2,
		ManifestPath: filepath.Join(dir, "s.manifest"),
		Progress:     func(p, c int) { probes, cached = p, c },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached != probes {
		t.Fatalf("resumed search executed %d probes", probes-cached)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Fatal("resumed rows diverge from the fresh run")
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("frontier artifact is not byte-identical across resume")
	}
	if !strings.Contains(out1.String(), `"predicate":"speedup-collapse"`) {
		t.Fatalf("artifact missing predicate field: %s", out1.String())
	}
}

func TestSearchBudgetAxisArmsPricing(t *testing.T) {
	spec := SearchSpec{
		Base:       fastOpts(Greedy),
		Axis:       "budget",
		Min:        0.0001,
		Max:        0.05,
		Tolerance:  0.02,
		Predicates: []string{"budget-fallback"},
		ClimbSeeds: -1,
		MaxProbes:  8,
	}
	rows, err := Search(spec)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	// The base had no Cost block: the axis must arm pricing, and every
	// probe fingerprint must carry the cost segment.
	for _, fp := range []string{row.LoCell.Fingerprint, row.HiCell.Fingerprint} {
		if !strings.Contains(fp, "|cost=") {
			t.Fatalf("budget probe ran unpriced: %q", fp)
		}
	}
	if !row.LoHolds {
		t.Fatalf("a near-zero budget must force IC fallbacks: %+v", row.LoMetrics)
	}
	if row.LoMetrics.BudgetDenials <= 0 {
		t.Fatalf("budget-fallback holds without denials on record: %+v", row.LoMetrics)
	}
}

func TestSearchDoesNotMutateBase(t *testing.T) {
	spec := SearchSpec{
		Base:       fastOpts(Greedy),
		Axis:       "ec-revoke-mtbf",
		Min:        500,
		Max:        50000,
		Tolerance:  40000,
		Predicates: []string{"speedup-collapse"},
		ClimbSeeds: -1,
	}
	spec.Base.Faults = &FaultOptions{ECRevocationMTBF: 9999, Seed: 42}
	if _, err := Search(spec); err != nil {
		t.Fatal(err)
	}
	// Probes clone the pointer-typed sub-options before touching them.
	if spec.Base.Faults.ECRevocationMTBF != 9999 || spec.Base.Faults.Seed != 42 {
		t.Fatalf("search mutated the caller's fault options: %+v", spec.Base.Faults)
	}
}
