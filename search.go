package cloudburst

import (
	"context"
	"fmt"
	"io"
	"strings"

	"cloudburst/internal/search"
	"cloudburst/internal/sweep"
)

// SearchError is the typed rejection of an invalid frontier search
// (unknown axis, empty bracket, bad predicate set). Unwrap with errors.As.
type SearchError = search.Error

// FrontierRow is one row of the frontier artifact: the located crossing
// (or the verdict that none exists in the bracket) for one predicate,
// with the bracketing cell pair, the crossing estimate, and the worst
// replication seed the hill-climb found.
type FrontierRow = search.Row

// SearchSpec declares an adaptive frontier search: instead of sweeping a
// declared grid, Search bisects one continuous axis of the configuration
// space to localize where an SLA predicate first fails — speedup
// collapsing below 1, the audited slack rule reporting admission
// violations, the budget gate forcing IC fallbacks, or order-preserving
// delivery stagnating — then hill-climbs over replication seeds toward
// the worst case at the located frontier.
type SearchSpec struct {
	// Base is the configuration every probe starts from; the searched axis
	// overrides its corresponding knob probe by probe. The zero value is
	// the paper testbed under the Op scheduler.
	Base Options

	// Axis names the knob under search — see SearchAxes for the
	// vocabulary.
	Axis string
	// Min and Max bracket the search on the axis. Both must be positive:
	// zero is every axis knob's "use the documented default" sentinel in
	// Options.Normalize, so a zero endpoint would not probe the value 0 —
	// it would silently probe the default.
	Min, Max float64
	// Tolerance is the bracket width below which a crossing counts as
	// localized (default (Max-Min)/64).
	Tolerance float64

	// Predicates selects preset predicates by name — see SearchPredicates
	// for the vocabulary. Empty selects every preset.
	Predicates []string

	// Seed is the base replication seed for bisection probes (default 1).
	Seed int64
	// ClimbSeeds is how many candidate seeds the worst-case hill-climb
	// tries at each located frontier (default 4; negative disables).
	ClimbSeeds int
	// MaxProbes bounds bisection probes per predicate (default 64).
	MaxProbes int
}

// SearchConfig tunes search execution. The zero value runs with no
// artifact sink and no resume manifest.
type SearchConfig struct {
	// JSONL, when non-nil, receives the frontier artifact as JSON lines,
	// one FrontierRow per line in predicate order. Fresh, cached and
	// resumed runs of the same search emit byte-identical artifacts.
	JSONL io.Writer
	// ManifestPath arms crash-safe resume: every completed probe is
	// journaled there (same format as sweep manifests), and a re-run with
	// the same path re-executes only the probes not yet on record.
	ManifestPath string
	// Progress, when set, observes every settled probe: probes counts all
	// of them, cached the subset served from memory or the manifest.
	Progress func(probes, cached int)
}

// searchAxes maps axis names to the knob they steer on a normalized base.
// Every axis requires strictly positive probe values — zero would fall
// into the knob's normalization default instead of probing zero.
var searchAxes = []struct {
	name  string
	apply func(o *Options, v float64)
}{
	// Network transfer jitter (coefficient of variation).
	{"jitter", func(o *Options, v float64) { o.JitterCV = v }},
	// Uplink bandwidth in bytes/sec; the downlink scales along, keeping
	// the base's down/up ratio.
	{"bandwidth", func(o *Options, v float64) {
		ratio := o.DownloadMeanBW / o.UploadMeanBW
		o.UploadMeanBW = v
		o.DownloadMeanBW = v * ratio
	}},
	// Mean jobs per arrival batch.
	{"arrival-rate", func(o *Options, v float64) { o.MeanJobsPerBatch = v }},
	// Mean time between EC-machine revocations, seconds (smaller = more
	// hostile; arms fault injection if the base had none).
	{"ec-revoke-mtbf", func(o *Options, v float64) {
		if o.Faults == nil {
			o.Faults = &FaultOptions{}
		}
		o.Faults.ECRevocationMTBF = v
	}},
	// Committed burst-spend cap in dollars (arms the pricing model at the
	// default on-demand rate if the base had none).
	{"budget", func(o *Options, v float64) {
		if o.Cost == nil {
			o.Cost = &CostOptions{OnDemandRate: 0.10}
		}
		o.Cost.Budget = v
	}},
}

// SearchAxes returns the searchable axis names in canonical order.
func SearchAxes() []string {
	out := make([]string, len(searchAxes))
	for i, a := range searchAxes {
		out[i] = a.name
	}
	return out
}

// SearchPredicates returns the preset predicate names in canonical order.
func SearchPredicates() []string { return search.PresetNames() }

// Search runs the frontier search described by spec and returns one
// FrontierRow per predicate. See SearchContext.
func Search(spec SearchSpec) ([]FrontierRow, error) {
	return SearchContext(context.Background(), spec, SearchConfig{})
}

// SearchContext is Search with cooperative cancellation and execution
// controls (artifact sink, resume manifest, progress). Probes carry the
// same configuration fingerprints as sweep cells, so a search resumes
// from — and contributes to — the same crash-safe manifest machinery:
// a killed search re-run with the same ManifestPath re-executes only the
// probes not yet on record, and still emits the identical artifact.
func SearchContext(ctx context.Context, spec SearchSpec, cfg SearchConfig) ([]FrontierRow, error) {
	preds, err := search.PresetSet(spec.Predicates)
	if err != nil {
		return nil, err
	}
	apply, err := spec.applier()
	if err != nil {
		return nil, err
	}
	needAudit := search.NeedsAuditAny(preds)
	if err := spec.Base.Validate(); err != nil {
		return nil, err
	}
	// Both bracket endpoints must be runnable before any probe starts —
	// the same typed errors Run would raise mid-search.
	for _, v := range []float64{spec.Min, spec.Max} {
		if err := spec.probeOptions(apply, v, 1).Validate(); err != nil {
			return nil, err
		}
	}

	var probes, cached int
	scfg := search.Config{
		Axis: search.Axis{
			Name: spec.Axis, Min: spec.Min, Max: spec.Max, Tolerance: spec.Tolerance,
		},
		Predicates:   preds,
		Seed:         spec.Seed,
		ClimbSeeds:   spec.ClimbSeeds,
		MaxProbes:    spec.MaxProbes,
		ManifestPath: cfg.ManifestPath,
		Synth: func(v float64, seed int64) (sweep.Cell, error) {
			o := spec.probeOptions(apply, v, seed)
			cell := sweep.SynthCell(string(o.Scheduler), string(o.Bucket), spec.Axis, v, seed)
			cell.Fingerprint = o.Fingerprint()
			return cell, nil
		},
	}
	if cfg.Progress != nil {
		scfg.OnProbe = func(_ sweep.Cell, _ sweep.Metrics, wasCached bool) {
			probes++
			if wasCached {
				cached++
			}
			cfg.Progress(probes, cached)
		}
	}

	rows, err := search.Run(ctx, scfg, func(ctx context.Context, v float64, seed int64) (sweep.Metrics, error) {
		o := spec.probeOptions(apply, v, seed)
		o.Audit = needAudit
		r, err := RunContext(ctx, o)
		if err != nil {
			return sweep.Metrics{}, err
		}
		m := sweepMetrics(r)
		if needAudit {
			a, err := r.Audit()
			if err != nil {
				return sweep.Metrics{}, err
			}
			m.AdmissionViolations = len(a.AdmissionViolations)
			m.Audited = true
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.JSONL != nil {
		if err := search.WriteRows(cfg.JSONL, rows); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// applier resolves the spec's axis name and validates the bracket's
// search-specific constraints (the core validates the rest).
func (s SearchSpec) applier() (func(*Options, float64), error) {
	var apply func(*Options, float64)
	for _, a := range searchAxes {
		if a.name == s.Axis {
			apply = a.apply
			break
		}
	}
	if apply == nil {
		return nil, &SearchError{Field: "axis", Reason: fmt.Sprintf("%q is not searchable (want %s)", s.Axis, strings.Join(SearchAxes(), ", "))}
	}
	if s.Min <= 0 {
		return nil, &SearchError{Field: "min", Reason: fmt.Sprintf("%g must be positive: 0 is the %s knob's use-the-default sentinel, not the value 0", s.Min, s.Axis)}
	}
	return apply, nil
}

// probeOptions builds one probe's effective configuration: the normalized
// base with the axis applied and the three stream seeds derived from the
// probe's replication seed, exactly as grid cells derive theirs.
func (s SearchSpec) probeOptions(apply func(*Options, float64), v float64, seed int64) Options {
	o := s.Base.Normalize()
	// The pointer-typed sub-options are cloned before the axis touches
	// them — probes must not mutate each other through the shared base.
	if o.Faults != nil {
		f := *o.Faults
		o.Faults = &f
	}
	if o.Cost != nil {
		c := *o.Cost
		o.Cost = &c
	}
	apply(&o, v)
	o.WorkloadSeed = sweep.DeriveSeed(seed, "workload")
	o.NetSeed = sweep.DeriveSeed(seed, "net")
	if o.Faults != nil {
		o.Faults.Seed = sweep.DeriveSeed(seed, "fault")
	}
	return o
}
