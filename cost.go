package cloudburst

import "cloudburst/internal/cost"

// CostOptions arms the deterministic pricing model: every external-cloud
// machine accrues rental cost for the span it is held, rounded up to whole
// billing intervals like real cloud billing, and — when Budget is set —
// schedulers refuse bursts whose prepaid charge would overrun the remaining
// budget, keeping that work on the internal cloud instead. Nil CostOptions
// keeps cost accounting off with zero simulation-path overhead and a
// bit-identical trace.
//
// Two figures are reported. Report.CostRental is the audited rental bill of
// the machines actually held (a fixed fleet rents for the whole run
// regardless of placement decisions; an elastic fleet for its boot–drain
// spans). Report.CostCommitted is the prepaid spend the budget gate meters:
// each admitted burst commits the billing-rounded price of its estimated
// EC occupancy at admission time, and the running commitment never exceeds
// Budget by construction.
type CostOptions struct {
	// OnDemandRate is the on-demand price of one external-cloud machine in
	// dollars per machine-hour (default 0.10). Extra EC sites may override
	// it per site via ECSiteSpec.OnDemandRate.
	OnDemandRate float64
	// SpotRate is the discounted machine-hour price used for the primary EC
	// fleet when spot-style revocations are armed
	// (Faults.ECRevocationMTBF > 0). Zero keeps the on-demand rate.
	SpotRate float64
	// BillingIntervalSec rounds every rental span and burst commitment up
	// to whole billing intervals, minimum one (default 3600: hourly
	// billing).
	BillingIntervalSec float64
	// Budget caps the committed burst spend in dollars; once the next
	// burst's prepaid charge would overrun it, schedulers keep the job on
	// the internal cloud (the job is never lost). Zero means unlimited.
	Budget float64
}

// normalize fills the documented defaults, mirroring FaultOptions.
func (c CostOptions) normalize() CostOptions {
	if c.OnDemandRate == 0 {
		c.OnDemandRate = 0.10
	}
	if c.BillingIntervalSec == 0 {
		c.BillingIntervalSec = cost.DefaultBillingInterval
	}
	return c
}

// validate rejects out-of-domain cost options with typed *OptionError
// values, mirroring Options.validate.
func (c CostOptions) validate() error {
	switch {
	case c.OnDemandRate < 0:
		return optErr("Cost.OnDemandRate", c.OnDemandRate, "must not be negative")
	case c.SpotRate < 0:
		return optErr("Cost.SpotRate", c.SpotRate, "must not be negative")
	case c.BillingIntervalSec < 0:
		return optErr("Cost.BillingIntervalSec", c.BillingIntervalSec, "must not be negative")
	case c.Budget < 0:
		return optErr("Cost.Budget", c.Budget, "must not be negative")
	}
	return nil
}

// engineConfig translates the public cost options into the engine's pricing
// configuration. spot reports whether the primary EC fleet is revocable.
func (c CostOptions) engineConfig(spot bool) *cost.Config {
	c = c.normalize()
	return &cost.Config{
		OnDemandRate:    c.OnDemandRate,
		SpotRate:        c.SpotRate,
		BillingInterval: c.BillingIntervalSec,
		Budget:          c.Budget,
		Spot:            spot,
	}
}
