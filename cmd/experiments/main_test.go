package main

import (
	"sort"
	"strings"
	"testing"
)

func TestRunOneUnknownDriverListsValidNames(t *testing.T) {
	err := runOne("fig99", 1)
	if err == nil {
		t.Fatal("unknown driver accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig99"`) {
		t.Fatalf("error does not name the bad driver: %q", msg)
	}
	// Every valid name — including the multi-table table1 special case —
	// must appear in the message so the user can self-correct.
	for _, name := range driverNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error omits valid driver %q: %q", name, msg)
		}
	}
}

func TestDriverNamesSortedAndComplete(t *testing.T) {
	names := driverNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("driver names unsorted: %v", names)
	}
	if len(names) != len(singleDrivers)+1 {
		t.Fatalf("driverNames returned %d names, want %d", len(names), len(singleDrivers)+1)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate driver name %q", n)
		}
		seen[n] = true
	}
	for name := range singleDrivers {
		if !seen[name] {
			t.Fatalf("driverNames omits %q", name)
		}
	}
	if !seen["table1"] {
		t.Fatal("driverNames omits table1")
	}
}

func TestRunOneKnownDriver(t *testing.T) {
	if err := runOne("fig3", 1); err != nil {
		t.Fatalf("fig3 driver failed: %v", err)
	}
}
