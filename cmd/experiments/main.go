// Command experiments regenerates every table and figure of the paper's
// evaluation section, plus the ablation studies called out in DESIGN.md.
//
//	experiments            # all figures and tables
//	experiments -ablations # design-choice ablations as well
//	experiments -only fig9 # a single driver
//
// Related commands: cmd/cloudburst runs a single simulation (or, with
// -serve, the always-on streaming service mode with rolling-window metrics
// and checkpoint/restore); cmd/sweep runs sharded scenario sweeps with
// resume manifests.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cloudburst/internal/experiments"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "base replication seed")
		ablations  = flag.Bool("ablations", false, "also run the ablation studies")
		extensions = flag.Bool("extensions", false, "also run the future-work extension studies")
		only       = flag.String("only", "", "run a single driver: fig3, fig4a, fig4b, fig6, fig7, fig8, fig9, fig10, table1, sibs, autoscale, tickets")
	)
	flag.Parse()

	if *only != "" {
		if err := runOne(strings.ToLower(*only), *seed); err != nil {
			fatal(err)
		}
		return
	}

	tables, err := experiments.All(*seed)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	if *ablations {
		abl, err := experiments.Ablations(*seed)
		if err != nil {
			fatal(err)
		}
		for _, t := range abl {
			fmt.Println(t)
		}
	}
	if *extensions {
		ext, err := experiments.Extensions(*seed)
		if err != nil {
			fatal(err)
		}
		for _, t := range ext {
			fmt.Println(t)
		}
	}
}

// singleDrivers maps every -only name with a single-table driver; table1
// is handled separately because it prints one table per bucket.
var singleDrivers = map[string]func(int64) (*experiments.Table, error){
	"fig3":      experiments.Figure3QRSM,
	"fig4a":     experiments.Figure4aTimeOfDay,
	"fig4b":     experiments.Figure4bThreads,
	"fig6":      experiments.Figure6Makespan,
	"fig7":      experiments.Figure7Completions,
	"fig8":      experiments.Figure8LargeCompletions,
	"fig9":      experiments.Figure9OOMetric,
	"fig10":     experiments.Figure10RelativeOO,
	"sibs":      experiments.SIBSOptimization,
	"autoscale": experiments.ExtensionAutoscale,
	"tickets":   experiments.ExtensionTickets,
	"multiec":   experiments.ExtensionMultiEC,
}

// driverNames returns every valid -only argument, sorted.
func driverNames() []string {
	names := make([]string, 0, len(singleDrivers)+1)
	for name := range singleDrivers {
		names = append(names, name)
	}
	names = append(names, "table1")
	sort.Strings(names)
	return names
}

func runOne(name string, seed int64) error {
	if f, ok := singleDrivers[name]; ok {
		t, err := f(seed)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}
	if name == "table1" {
		ts, err := experiments.Table1Metrics(seed)
		if err != nil {
			return err
		}
		for _, t := range ts {
			fmt.Println(t)
		}
		return nil
	}
	return fmt.Errorf("unknown driver %q (valid drivers: %s)", name, strings.Join(driverNames(), ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
