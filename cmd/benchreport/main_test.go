package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cloudburst
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1Metrics 	       1	 100248665 ns/op	35047600 B/op	   30215 allocs/op
BenchmarkSimEngine-8   	       3	    123456 ns/op
BenchmarkQRSMPredict   	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	cloudburst	0.104s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	if rep.CPU == "" {
		t.Error("cpu line not captured")
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	names := []string{"BenchmarkQRSMPredict", "BenchmarkSimEngine", "BenchmarkTable1Metrics"}
	for i, want := range names {
		if rep.Benchmarks[i].Name != want {
			t.Errorf("benchmark[%d] = %q, want %q", i, rep.Benchmarks[i].Name, want)
		}
	}
	tm := rep.Benchmarks[2]
	if tm.NsPerOp != 100248665 || tm.BytesPerOp == nil || *tm.BytesPerOp != 35047600 ||
		tm.AllocsPerOp == nil || *tm.AllocsPerOp != 30215 {
		t.Errorf("Table1Metrics metrics = %+v", tm)
	}
	// SimEngine ran without -benchmem: absent, not zero.
	if rep.Benchmarks[1].AllocsPerOp != nil || rep.Benchmarks[1].BytesPerOp != nil {
		t.Errorf("SimEngine mem metrics = %+v, want absent", rep.Benchmarks[1])
	}
	// QRSMPredict measured a real zero: it must survive, distinct from absent.
	qp := rep.Benchmarks[0]
	if qp.AllocsPerOp == nil || *qp.AllocsPerOp != 0 || qp.BytesPerOp == nil || *qp.BytesPerOp != 0 {
		t.Errorf("QRSMPredict mem metrics = %+v, want measured zeros", qp)
	}
}

func TestMeasuredZeroRoundTrips(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i, b := range back.Benchmarks {
		orig := rep.Benchmarks[i]
		if (b.AllocsPerOp == nil) != (orig.AllocsPerOp == nil) {
			t.Errorf("%s: allocs presence lost in round trip", b.Name)
		}
	}
	if !strings.Contains(string(data), `"allocs_per_op":0`) {
		t.Errorf("measured zero allocs dropped from JSON: %s", data)
	}
}

func TestParseCustomMetric(t *testing.T) {
	// b.ReportMetric units land between ns/op and B/op in -bench output;
	// the parser must record them without losing the standard pairs.
	const line = `BenchmarkSweepCells-8   3   11415330 ns/op   3154 cells/sec   2972829 B/op   15573 allocs/op
`
	rep, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Benchmarks[0]
	if b.NsPerOp != 11415330 || b.AllocsPerOp == nil || *b.AllocsPerOp != 15573 {
		t.Errorf("standard metrics lost around custom unit: %+v", b)
	}
	if got := b.Extra["cells/sec"]; got != 3154 {
		t.Errorf("cells/sec = %v, want 3154", got)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error for output without benchmarks")
	}
}

func fp(v float64) *float64 { return &v }

func TestCompare(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: fp(50)},
		{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: fp(10)},
	}}

	t.Run("within tolerance", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 140, AllocsPerOp: fp(52)},
			{Name: "BenchmarkB", NsPerOp: 150, AllocsPerOp: fp(10)},
		}}
		var sb strings.Builder
		if f := compare(base, cand, 0.5, 0.1, &sb); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 200, AllocsPerOp: fp(50)},
		}}
		var sb strings.Builder
		f := compare(base, cand, 0.5, 0.1, &sb)
		if len(f) != 1 || !strings.Contains(f[0], "ns/op") {
			t.Fatalf("failures = %v, want one ns/op regression", f)
		}
	})

	t.Run("allocs regression", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: fp(14)},
		}}
		var sb strings.Builder
		f := compare(base, cand, 0.5, 0.1, &sb)
		if len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
			t.Fatalf("failures = %v, want one allocs/op regression", f)
		}
	})

	t.Run("new benchmark ignored", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: fp(1e6)},
		}}
		var sb strings.Builder
		if f := compare(base, cand, 0.5, 0.1, &sb); len(f) != 0 {
			t.Fatalf("new benchmark should not fail the gate: %v", f)
		}
		if !strings.Contains(sb.String(), "new") {
			t.Error("new benchmark not reported")
		}
	})

	t.Run("unmeasured allocs skipped not zero", func(t *testing.T) {
		// Candidate ran without -benchmem: the gate must not treat the
		// absent metric as 0 (a "free" pass) nor as a regression.
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 100},
		}}
		var sb strings.Builder
		if f := compare(base, cand, 0.5, 0.1, &sb); len(f) != 0 {
			t.Fatalf("unmeasured allocs must not gate: %v", f)
		}
		if !strings.Contains(sb.String(), "not measured in candidate") {
			t.Errorf("missing skip notice:\n%s", sb.String())
		}
	})

	t.Run("measured zero baseline is a promise", func(t *testing.T) {
		zbase := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: fp(0)},
		}}
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: fp(3)},
		}}
		var sb strings.Builder
		f := compare(zbase, cand, 0.5, 0.1, &sb)
		if len(f) != 1 || !strings.Contains(f[0], "allocation-free") {
			t.Fatalf("failures = %v, want allocation-free regression", f)
		}
	})
}
