package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cloudburst
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1Metrics 	       1	 100248665 ns/op	35047600 B/op	   30215 allocs/op
BenchmarkSimEngine-8   	       3	    123456 ns/op
BenchmarkQRSMPredict   	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	cloudburst	0.104s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	if rep.CPU == "" {
		t.Error("cpu line not captured")
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	names := []string{"BenchmarkQRSMPredict", "BenchmarkSimEngine", "BenchmarkTable1Metrics"}
	for i, want := range names {
		if rep.Benchmarks[i].Name != want {
			t.Errorf("benchmark[%d] = %q, want %q", i, rep.Benchmarks[i].Name, want)
		}
	}
	tm := rep.Benchmarks[2]
	if tm.NsPerOp != 100248665 || tm.BytesPerOp != 35047600 || tm.AllocsPerOp != 30215 {
		t.Errorf("Table1Metrics metrics = %+v", tm)
	}
	if rep.Benchmarks[1].AllocsPerOp != 0 {
		t.Errorf("SimEngine allocs = %v, want 0 (absent)", rep.Benchmarks[1].AllocsPerOp)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error for output without benchmarks")
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 50},
		{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: 10},
	}}

	t.Run("within tolerance", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 140, AllocsPerOp: 52},
			{Name: "BenchmarkB", NsPerOp: 150, AllocsPerOp: 10},
		}}
		var sb strings.Builder
		if f := compare(base, cand, 0.5, 0.1, &sb); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	})

	t.Run("ns regression", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 200, AllocsPerOp: 50},
		}}
		var sb strings.Builder
		f := compare(base, cand, 0.5, 0.1, &sb)
		if len(f) != 1 || !strings.Contains(f[0], "ns/op") {
			t.Fatalf("failures = %v, want one ns/op regression", f)
		}
	})

	t.Run("allocs regression", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkB", NsPerOp: 200, AllocsPerOp: 14},
		}}
		var sb strings.Builder
		f := compare(base, cand, 0.5, 0.1, &sb)
		if len(f) != 1 || !strings.Contains(f[0], "allocs/op") {
			t.Fatalf("failures = %v, want one allocs/op regression", f)
		}
	})

	t.Run("new benchmark ignored", func(t *testing.T) {
		cand := &Report{Benchmarks: []Benchmark{
			{Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 1e6},
		}}
		var sb strings.Builder
		if f := compare(base, cand, 0.5, 0.1, &sb); len(f) != 0 {
			t.Fatalf("new benchmark should not fail the gate: %v", f)
		}
		if !strings.Contains(sb.String(), "new") {
			t.Error("new benchmark not reported")
		}
	})
}
