// Command benchreport converts `go test -bench` output into a
// machine-readable BENCH.json and compares two such reports under
// regression tolerances.
//
// Record mode (default) reads benchmark output from stdin or -in and
// writes the JSON report to stdout or -o:
//
//	go test -run xxx -bench . -benchtime 1x -benchmem . | benchreport -o BENCH.json
//
// Compare mode gates a candidate report against a committed baseline:
//
//	benchreport -compare BENCH.json BENCH.ci.json -ns-tol 2.0 -allocs-tol 0.15
//
// It exits nonzero when any benchmark present in both reports regresses
// beyond tolerance. Allocations per op are effectively machine-independent,
// so their tolerance is tight; wall time varies with hardware and load, so
// its tolerance is loose — tune both to the stability of the environment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one measured benchmark result. BytesPerOp and AllocsPerOp
// are pointers because absence means "not measured" (the bench ran without
// -benchmem), which is different from a measured zero — a zero-allocation
// benchmark must round-trip its hard-won 0, and an unmeasured one must not
// be mistaken for allocation-free.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "cells/sec"). Recorded
	// for the report, never gated: their direction (higher- or lower-is-
	// better) is metric-specific and unknown to the comparator.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH.json document.
type Report struct {
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches the head of one result row of `go test -bench` output,
// e.g.
//
//	BenchmarkTable1Metrics-8    1    100248665 ns/op    35047600 B/op    30215 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so reports from differently sized
// machines stay comparable. The measurement tail is a sequence of
// value/unit pairs parsed by parseMetrics — custom b.ReportMetric units
// (like "cells/sec") can appear anywhere among the standard three.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parseMetrics fills b from the value/unit pair list after the iteration
// count. It reports whether an ns/op pair was present — the marker of a
// real benchmark result line.
func parseMetrics(b *Benchmark, fields []string) bool {
	sawNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	return sawNs
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	goLine := regexp.MustCompile(`^(?:goos|pkg): `)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case len(line) > 5 && line[:5] == "cpu: ":
			rep.CPU = line[5:]
		case goLine.MatchString(line):
			// informational; ignored
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			b := Benchmark{Name: m[1]}
			b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			if !parseMetrics(&b, strings.Fields(m[3])) {
				continue
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compare reports regressions of cand against base, returning the failure
// lines. A metric regresses when cand > base*(1+tol); a zero baseline
// ns/op is skipped (nothing meaningful to ratio against), and allocs/op is
// gated only when both sides actually measured it — an absent metric means
// the bench ran without -benchmem, not that it allocated nothing.
func compare(base, cand *Report, nsTol, allocsTol float64, out io.Writer) []string {
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	var failures []string
	for _, c := range cand.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Fprintf(out, "new       %-40s %12.0f ns/op", c.Name, c.NsPerOp)
			if c.AllocsPerOp != nil {
				fmt.Fprintf(out, " %10.0f allocs/op", *c.AllocsPerOp)
			}
			for _, unit := range extraUnits(Benchmark{}, c) {
				fmt.Fprintf(out, " %10.4g %s", c.Extra[unit], unit)
			}
			fmt.Fprintln(out)
			continue
		}
		check := func(metric string, baseV, candV, tol float64) {
			if baseV <= 0 {
				return
			}
			ratio := candV / baseV
			status := "ok"
			if candV > baseV*(1+tol) {
				status = "REGRESSED"
				failures = append(failures, fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%, tol %+.0f%%)",
					c.Name, metric, baseV, candV, (ratio-1)*100, tol*100))
			}
			fmt.Fprintf(out, "%-9s %-40s %-9s %12.4g -> %12.4g (%+.1f%%)\n",
				status, c.Name, metric, baseV, candV, (ratio-1)*100)
		}
		check("ns/op", b.NsPerOp, c.NsPerOp, nsTol)
		switch {
		case b.AllocsPerOp != nil && c.AllocsPerOp != nil:
			// A measured-zero baseline is a promise, not a skip: any
			// candidate allocation regresses it.
			if *b.AllocsPerOp == 0 && *c.AllocsPerOp > 0 {
				failures = append(failures, fmt.Sprintf("%s allocs/op: 0 -> %.4g (was allocation-free)",
					c.Name, *c.AllocsPerOp))
				fmt.Fprintf(out, "%-9s %-40s %-9s %12.4g -> %12.4g\n",
					"REGRESSED", c.Name, "allocs/op", 0.0, *c.AllocsPerOp)
			} else {
				check("allocs/op", *b.AllocsPerOp, *c.AllocsPerOp, allocsTol)
			}
		case b.AllocsPerOp != nil || c.AllocsPerOp != nil:
			side := "baseline"
			if b.AllocsPerOp != nil {
				side = "candidate"
			}
			fmt.Fprintf(out, "%-9s %-40s %-9s not measured in %s\n", "skipped", c.Name, "allocs/op", side)
		}
		// Custom b.ReportMetric units (e.g. "cells/sec") are informational:
		// their better-direction is metric-specific, so they are shown with
		// their drift but never gate the comparison.
		for _, unit := range extraUnits(b, c) {
			bv, bok := b.Extra[unit]
			cv, cok := c.Extra[unit]
			switch {
			case bok && cok:
				drift := ""
				if bv > 0 {
					drift = fmt.Sprintf(" (%+.1f%%)", (cv/bv-1)*100)
				}
				fmt.Fprintf(out, "%-9s %-40s %-9s %12.4g -> %12.4g%s\n", "info", c.Name, unit, bv, cv, drift)
			case cok:
				fmt.Fprintf(out, "%-9s %-40s %-9s %28.4g (new metric)\n", "info", c.Name, unit, cv)
			default:
				fmt.Fprintf(out, "%-9s %-40s %-9s not measured in candidate\n", "info", c.Name, unit)
			}
		}
	}
	return failures
}

// extraUnits returns the union of both sides' custom metric units, sorted.
func extraUnits(b, c Benchmark) []string {
	seen := make(map[string]bool, len(b.Extra)+len(c.Extra))
	var out []string
	for unit := range b.Extra {
		if !seen[unit] {
			seen[unit] = true
			out = append(out, unit)
		}
	}
	for unit := range c.Extra {
		if !seen[unit] {
			seen[unit] = true
			out = append(out, unit)
		}
	}
	sort.Strings(out)
	return out
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("o", "", "output JSON path (default stdout)")
	comp := flag.Bool("compare", false, "compare two BENCH.json reports: baseline candidate")
	nsTol := flag.Float64("ns-tol", 2.0, "allowed fractional ns/op regression in compare mode")
	allocsTol := flag.Float64("allocs-tol", 0.15, "allowed fractional allocs/op regression in compare mode")
	flag.Parse()

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchreport -compare baseline.json candidate.json")
			os.Exit(2)
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cand, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		failures := compare(base, cand, *nsTol, *allocsTol, os.Stdout)
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "\n%d benchmark regression(s):\n", len(failures))
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
		return
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
