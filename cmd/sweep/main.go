// Command sweep expands a parameter grid — schedulers × buckets × network
// profiles × fault sets × cost sets × replication seeds — and executes
// every cell concurrently, streaming per-cell results to JSONL/CSV and
// keeping a crash-safe resume manifest.
//
// Examples:
//
//	sweep -schedulers Greedy,Op,SIBS -buckets small,uniform,large -seeds 4
//	sweep -spec grid.json -out results.jsonl -csv results.csv
//	sweep -schedulers Op -profiles paper,highvar -seeds 8 -resume sweep.manifest
//	sweep -schedulers Op,SIBS -faults ec-revoke -seeds 4 -agg
//	sweep -schedulers Op -costs ondemand,budget -seeds 4 -pareto frontier.jsonl
//	sweep -search speedup-collapse -axis jitter -min 0.05 -max 3 -frontier frontier.jsonl
//
// With -search the command runs the adaptive frontier search instead of a
// grid: it bisects the chosen axis between -min and -max to localize where
// each named predicate first fails, hill-climbs replication seeds at the
// located frontier, and writes the frontier artifact as JSON lines. The
// grid flags still select the base configuration (the first cell of the
// grid the flags would have declared).
//
// Interrupting a sweep (Ctrl-C) leaves every completed cell in the resume
// manifest; re-running the identical invocation with the same -resume path
// re-executes only the incomplete cells and rewrites the output files in
// full.
//
// Related commands: cmd/cloudburst runs a single simulation (or, with
// -serve, the always-on streaming service mode with rolling-window metrics
// and checkpoint/restore); cmd/experiments regenerates the paper's figures
// and tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"cloudburst"
)

// The -profiles vocabulary is the library's preset registry: each name
// resolves through cloudburst.SweepProfileFor, so CLI profiles and
// library presets cannot drift apart. A spec file can still define
// arbitrary profiles.

// faultPresets are the named fault regimes selectable from the command line.
var faultPresets = map[string]cloudburst.SweepFaultSet{
	"none":      {Name: "none"},
	"ec-revoke": {Name: "ec-revoke", ECRevocationMTBF: 400, ECRevocationWarning: 30},
	"ic-crash":  {Name: "ic-crash", ICCrashMTBF: 600, ICCrashMTTR: 300},
	"stall":     {Name: "stall", TransferStallMTBF: 1200, TransferStallTimeout: 90},
}

// costPresets are the named pricing regimes selectable from the command
// line. The budget preset prices on-demand hours but caps committed burst
// spend, exercising the admission gate; spot prices apply only under
// EC-revocation faults.
var costPresets = map[string]cloudburst.SweepCostSet{
	"free":     {Name: "free"},
	"ondemand": {Name: "ondemand", OnDemandRate: 0.10},
	"spot":     {Name: "spot", OnDemandRate: 0.10, SpotRate: 0.03},
	"budget":   {Name: "budget", OnDemandRate: 0.10, Budget: 0.25},
}

func main() {
	var (
		specPath = flag.String("spec", "", "JSON grid specification file (grid flags are ignored when set)")

		schedulers = flag.String("schedulers", "Op", "comma-separated schedulers: ICOnly, Greedy, GreedyTracking, Op, SIBS")
		buckets    = flag.String("buckets", "uniform", "comma-separated buckets: small, uniform, large")
		seeds      = flag.Int("seeds", 1, "number of replication seeds")
		seedBase   = flag.Int64("seed-base", 1, "first replication seed")
		profiles   = flag.String("profiles", "paper", "comma-separated network profiles: "+strings.Join(cloudburst.Presets(), ", "))
		faults     = flag.String("faults", "none", "comma-separated fault sets: none, ec-revoke, ic-crash, stall")
		costs      = flag.String("costs", "free", "comma-separated cost sets: free, ondemand, spot, budget")
		batches    = flag.Int("batches", 0, "arrival batches per run (0 = paper default 6)")
		jobs       = flag.Float64("jobs", 0, "mean jobs per batch (0 = paper default 15)")
		icM        = flag.Int("ic", 0, "IC machines (0 = paper default 8)")
		ecM        = flag.Int("ec", 0, "EC machines (0 = paper default 2)")
		margin     = flag.Float64("margin", 0, "slack safety margin tau (seconds)")
		resched    = flag.Bool("resched", false, "enable rescheduling strategies (Sec. IV-D)")
		shards     = flag.String("shards", "", "comma-separated shard counts for the sharded-scheduling axis, e.g. 1,4,8 (empty = monolithic)")

		searchPreds = flag.String("search", "", "run a frontier search instead of a grid sweep: comma-separated predicates ("+strings.Join(cloudburst.SearchPredicates(), ", ")+"), or 'all'")
		axis        = flag.String("axis", "jitter", "search axis: "+strings.Join(cloudburst.SearchAxes(), ", "))
		axisMin     = flag.Float64("min", 0, "search bracket lower endpoint (must be positive)")
		axisMax     = flag.Float64("max", 0, "search bracket upper endpoint")
		axisTol     = flag.Float64("tol", 0, "bracket width that counts as localized (0 = 1/64 of the bracket)")
		climb       = flag.Int("climb", 0, "worst-seed hill-climb candidates per frontier (0 = default 4, negative = off)")
		maxProbes   = flag.Int("max-probes", 0, "bisection probe budget per predicate (0 = default 64)")
		frontier    = flag.String("frontier", "", "write the frontier rows to this file as JSON lines")

		out      = flag.String("out", "", "stream per-cell results to this file as JSON lines")
		csvOut   = flag.String("csv", "", "stream per-cell results to this file as CSV")
		resume   = flag.String("resume", "", "crash-safe manifest path: completed cells are journaled here and never re-run")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		pareto   = flag.String("pareto", "", "write the rental-cost-vs-makespan Pareto frontier to this file as JSON lines")
		agg      = flag.Bool("agg", false, "print a mean/stddev/min/max table grouped by scheduler/bucket")
		quiet    = flag.Bool("q", false, "suppress the progress line")
		printAll = flag.Bool("cells", false, "print each cell's headline metrics to stdout")
	)
	flag.Parse()

	spec, err := buildSpec(*specPath, specFlags{
		schedulers: *schedulers, buckets: *buckets,
		seeds: *seeds, seedBase: *seedBase,
		profiles: *profiles, faults: *faults, costs: *costs,
		batches: *batches, jobs: *jobs, icM: *icM, ecM: *ecM,
		margin: *margin, resched: *resched, shards: *shards,
	})
	if err != nil {
		fatal(err)
	}

	if *searchPreds != "" {
		runSearch(spec, searchFlags{
			predicates: *searchPreds, axis: *axis,
			min: *axisMin, max: *axisMax, tol: *axisTol,
			seed: *seedBase, climb: *climb, maxProbes: *maxProbes,
			frontier: *frontier, resume: *resume, quiet: *quiet,
		})
		return
	}

	cfg := cloudburst.SweepConfig{Workers: *workers, ManifestPath: *resume}
	var closers []func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		closers = append(closers, f.Close)
		cfg.JSONL = f
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		closers = append(closers, f.Close)
		cfg.CSV = f
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := cloudburst.SweepContext(ctx, *spec, cfg)
	for _, c := range closers {
		c()
	}
	if err != nil {
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		fatal(err)
	}

	if *pareto != "" {
		if err := writePareto(*pareto, cloudburst.SweepParetoFront(results)); err != nil {
			fatal(err)
		}
	}

	if *printAll {
		for _, r := range results {
			c, m := r.Cell, r.Metrics
			fmt.Printf("%4d  %-14s %-8s %-8s %-10s %-8s seed %-4d  makespan %7.0fs  speedup %5.2f  burst %5.2f  [%s]\n",
				c.Index, c.Scheduler, c.Bucket, c.Profile, c.Fault, c.Cost, c.Seed,
				m.Makespan, m.Speedup, m.BurstRatio, r.Origin)
		}
	}
	if *agg || (!*printAll && *out == "" && *csvOut == "") {
		printAggregate(results)
	}
}

// specFlags carries the grid flags into buildSpec.
type specFlags struct {
	schedulers, buckets, profiles, faults, costs string
	shards                                       string
	seeds                                        int
	seedBase                                     int64
	batches                                      int
	jobs, margin                                 float64
	icM, ecM                                     int
	resched                                      bool
}

// buildSpec loads the spec file, or assembles a spec from the grid flags.
func buildSpec(path string, f specFlags) (*cloudburst.SweepSpec, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return cloudburst.ParseSweepSpec(data)
	}
	spec := cloudburst.SweepSpec{
		Schedulers:       splitList(f.schedulers),
		Buckets:          splitList(f.buckets),
		SeedCount:        f.seeds,
		BaseSeed:         f.seedBase,
		Batches:          f.batches,
		MeanJobsPerBatch: f.jobs,
		ICMachines:       f.icM,
		ECMachines:       f.ecM,
		SlackMarginSec:   f.margin,
		Rescheduling:     f.resched,
	}
	for _, name := range splitList(f.profiles) {
		p, err := cloudburst.SweepProfileFor(name)
		if err != nil {
			return nil, fmt.Errorf("unknown profile %q (want %s)", name, strings.Join(cloudburst.Presets(), ", "))
		}
		spec.Profiles = append(spec.Profiles, p)
	}
	for _, name := range splitList(f.faults) {
		fs, ok := faultPresets[name]
		if !ok {
			return nil, fmt.Errorf("unknown fault set %q (want %s)", name, strings.Join(presetNames(faultPresets), ", "))
		}
		spec.Faults = append(spec.Faults, fs)
	}
	for _, name := range splitList(f.costs) {
		cs, ok := costPresets[name]
		if !ok {
			return nil, fmt.Errorf("unknown cost set %q (want %s)", name, strings.Join(presetNames(costPresets), ", "))
		}
		spec.Costs = append(spec.Costs, cs)
	}
	for _, s := range splitList(f.shards) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad -shards entry %q: want integers like 1,4,8", s)
		}
		spec.Shards = append(spec.Shards, n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// searchFlags carries the frontier-search flags into runSearch.
type searchFlags struct {
	predicates, axis string
	min, max, tol    float64
	seed             int64
	climb, maxProbes int
	frontier, resume string
	quiet            bool
}

// runSearch executes the adaptive frontier search: the grid flags supply
// the base configuration (the first cell of the declared grid), the
// search flags the axis, bracket and predicate set.
func runSearch(spec *cloudburst.SweepSpec, f searchFlags) {
	cells := spec.Cells()
	if len(cells) == 0 {
		fatal(fmt.Errorf("sweep: the grid flags declare no base configuration"))
	}
	base, err := cloudburst.CellOptions(*spec, cells[0])
	if err != nil {
		fatal(err)
	}
	var preds []string
	if f.predicates != "all" {
		preds = splitList(f.predicates)
	}
	sspec := cloudburst.SearchSpec{
		Base:       base,
		Axis:       f.axis,
		Min:        f.min,
		Max:        f.max,
		Tolerance:  f.tol,
		Predicates: preds,
		Seed:       f.seed,
		ClimbSeeds: f.climb,
		MaxProbes:  f.maxProbes,
	}

	cfg := cloudburst.SearchConfig{ManifestPath: f.resume}
	totalProbes, totalCached := 0, 0
	cfg.Progress = func(probes, cached int) {
		totalProbes, totalCached = probes, cached
		if !f.quiet {
			fmt.Fprintf(os.Stderr, "\rsearch: %d probes (%d cached)", probes, cached)
		}
	}
	var closeFrontier func() error
	if f.frontier != "" {
		out, err := os.Create(f.frontier)
		if err != nil {
			fatal(err)
		}
		closeFrontier = out.Close
		cfg.JSONL = out
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rows, err := cloudburst.SearchContext(ctx, sspec, cfg)
	if closeFrontier != nil {
		closeFrontier()
	}
	if !f.quiet && totalProbes > 0 {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("probes: %d executed, %d cached\n", totalProbes-totalCached, totalCached)
	for _, r := range rows {
		if !r.Crossed {
			side := "neither end"
			if r.LoHolds {
				side = "both ends"
			}
			fmt.Printf("%-20s no crossing in %s [%g, %g] (holds at %s; %d probes)\n",
				r.Predicate, r.Axis, r.LoValue, r.HiValue, side, r.Probes)
			continue
		}
		fmt.Printf("%-20s crossing at %s ~ %g (bracket [%g, %g], %d probes)\n",
			r.Predicate, r.Axis, r.Crossing, r.LoValue, r.HiValue, r.Probes)
		if r.WorstSeed != 0 {
			fmt.Printf("%-20s   worst seed %d  margin %.4f  makespan %.0fs  speedup %.2f\n",
				"", r.WorstSeed, r.WorstMargin, r.WorstMetrics.Makespan, r.WorstMetrics.Speedup)
		}
	}
}

// writePareto emits the frontier as JSON lines, one point per line in
// ascending-cost order.
func writePareto(path string, front []cloudburst.SweepParetoPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range front {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func presetNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// printAggregate renders the group-by table: one row per scheduler/bucket
// with mean ± stddev and [min, max] for the headline metrics.
func printAggregate(results []cloudburst.SweepResult) {
	groups := cloudburst.AggregateSweep(results, func(c cloudburst.SweepCell) string {
		return c.Scheduler + "/" + c.Bucket
	})
	fmt.Printf("%-24s %4s  %-22s %-14s %-14s %-14s\n",
		"group", "n", "makespan_s", "speedup", "burst_ratio", "ec_util")
	for _, g := range groups {
		mk := g.Metric("makespan")
		fmt.Printf("%-24s %4d  %8.0f ±%-6.0f%6s %6.2f ±%-5.2f %6.2f ±%-5.2f %6.2f ±%-5.2f\n",
			g.Key, g.N,
			mk.Mean, mk.Std, fmt.Sprintf("[%0.0f]", mk.Max-mk.Min),
			g.Metric("speedup").Mean, g.Metric("speedup").Std,
			g.Metric("burst_ratio").Mean, g.Metric("burst_ratio").Std,
			g.Metric("ec_util").Mean, g.Metric("ec_util").Std)
	}
}

func fatal(err error) {
	// Library errors already carry a package prefix; avoid doubling it.
	fmt.Fprintln(os.Stderr, "sweep:", strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(1)
}
