// Command cloudburst runs one simulated cloud-bursting workload and prints
// the SLA report, optionally emitting the figure series as CSV. With -serve
// it instead runs the always-on streaming mode: open-ended diurnal (or
// flash-crowd) arrivals, rolling-window metrics on stdout, and optional
// checkpoint/restore across invocations.
//
// Examples:
//
//	cloudburst -scheduler Op -bucket large -jitter 0.5
//	cloudburst -preset highvar -compare
//	cloudburst -compare -bucket uniform
//	cloudburst -scheduler Greedy -csv oo > oo.csv
//	cloudburst -trace events.jsonl -chrome-trace timeline.json -audit
//	cloudburst -ec-revoke-mtbf 400 -ec-revoke-warn 30 -audit
//	cloudburst -ec-rate 0.10 -budget 0.50 -audit
//	cloudburst -advise sweep.manifest
//	cloudburst -serve -duration 2h -window 10m -verify
//	cloudburst -serve -arrivals flashcrowd -duration 1h
//	cloudburst -serve -duration 1h -checkpoint svc.cbcp
//	cloudburst -serve -duration 1h -restore svc.cbcp
//
// Related commands: cmd/experiments regenerates the paper's figures and
// tables; cmd/sweep runs sharded scenario sweeps with resume manifests.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudburst"
)

func main() {
	var (
		preset    = flag.String("preset", "", "start from a registered preset ("+strings.Join(cloudburst.Presets(), ", ")+"); explicit flags override its fields")
		scheduler = flag.String("scheduler", "Op", "scheduler: ICOnly, Greedy, GreedyTracking, Op, SIBS")
		bucket    = flag.String("bucket", "uniform", "workload bucket: small, uniform, large")
		batches   = flag.Int("batches", 6, "number of arrival batches")
		jobs      = flag.Float64("jobs", 15, "mean jobs per batch (Poisson)")
		seed      = flag.Int64("seed", 1, "workload seed")
		netSeed   = flag.Int64("netseed", 1, "network seed")
		jitter    = flag.Float64("jitter", 0.15, "bandwidth jitter CV (0.5 = high variation)")
		tol       = flag.Int("tol", 0, "out-of-order tolerance t_l (jobs)")
		margin    = flag.Float64("margin", 0, "slack safety margin tau (seconds)")
		resched   = flag.Bool("resched", false, "enable rescheduling strategies (Sec. IV-D)")
		shards    = flag.String("shards", "", "sharded scheduling spec N[:partition[:retries]], e.g. 4, 8:disjoint, 4:hash:3 (empty = monolithic)")
		compare   = flag.Bool("compare", false, "run ICOnly, Greedy, Op and SIBS on the same workload")
		csvOut    = flag.String("csv", "", "emit a series as CSV instead of the report: oo, completions, waits")
		autoscale = flag.Int("autoscale", 0, "autoscale the EC fleet up to N machines (0 = fixed fleet)")
		sites     = flag.Int("sites", 0, "extra external-cloud providers with independent pipes")
		outages   = flag.Float64("outage-mtbf", 0, "inject hard outages with this mean time between (seconds, 0 = off)")
		ticket    = flag.Float64("ticket", 0, "also report how a fixed completion promise of this many seconds fared")
		traceOut  = flag.String("trace", "", "stream the run's event trace to this file as JSON lines")
		chromeOut = flag.String("chrome-trace", "", "write the run's timeline to this file in Chrome trace-event format (open in chrome://tracing)")
		audit     = flag.Bool("audit", false, "replay the event trace through the independent SLA auditor and print its summary")
		verify    = flag.Bool("verify", false, "audit every event against the runtime invariant checker; fail on any violation (~2x slower)")

		ecRate     = flag.Float64("ec-rate", 0, "on-demand EC rental rate ($ per machine-hour, 0 = pricing off)")
		ecSpotRate = flag.Float64("ec-spot-rate", 0, "spot EC rental rate under revocation faults ($ per machine-hour, 0 = on-demand rate)")
		budget     = flag.Float64("budget", 0, "burst budget: admission stops committing EC spend past this ($, 0 = unlimited)")
		billing    = flag.Float64("billing", 0, "billing interval rentals are rounded up to (seconds, 0 = default 3600)")
		advisePath = flag.String("advise", "", "read a sweep resume manifest and print burst/no-burst advice per scenario, then exit")

		ecRevokeMTBF = flag.Float64("ec-revoke-mtbf", 0, "revoke EC machines permanently with this mean time between (seconds, 0 = off)")
		ecRevokeWarn = flag.Float64("ec-revoke-warn", 0, "advance warning before each EC revocation (seconds)")
		icCrashMTBF  = flag.Float64("ic-crash-mtbf", 0, "crash IC machines with this mean time between (seconds, 0 = off)")
		icCrashMTTR  = flag.Float64("ic-crash-mttr", 0, "mean IC repair time (seconds, default 300)")
		stallMTBF    = flag.Float64("stall-mtbf", 0, "stall primary-link transfers with this mean time between (seconds, 0 = off)")
		stallTimeout = flag.Float64("stall-timeout", 0, "sender timeout aborting a stalled transfer (seconds, default 120)")
		retries      = flag.Int("retries", 0, "EC re-admissions per disturbed job before IC fallback (0 = default 2, negative = never retry)")
		faultSeed    = flag.Int64("fault-seed", 0, "seed of the dedicated fault RNG")

		serve          = flag.Bool("serve", false, "streaming service mode: open-ended arrivals with rolling-window metrics (ignores -batches)")
		duration       = flag.Duration("duration", 0, "with -serve: virtual serving time before draining (0 = until Ctrl-C or -max-jobs)")
		window         = flag.Duration("window", 10*time.Minute, "with -serve: rolling metric window length")
		arrivals       = flag.String("arrivals", "diurnal", "with -serve: arrival pattern: steady, diurnal, flashcrowd")
		maxJobs        = flag.Int("max-jobs", 0, "with -serve: stop feeding after this many jobs (0 = unbounded)")
		burstFactor    = flag.Float64("burst-factor", 0, "with -serve -arrivals flashcrowd: rate multiplier during bursts (0 = default 6)")
		checkpointPath = flag.String("checkpoint", "", "with -serve: suspend at -duration and write the checkpoint blob to this file")
		restorePath    = flag.String("restore", "", "with -serve: resume from a checkpoint blob; -duration adds serving time")
		quiet          = flag.Bool("quiet", false, "with -serve: suppress per-window lines, print only the final summary")
	)
	flag.Parse()

	if *advisePath != "" {
		runAdvise(*advisePath)
		return
	}

	switch *csvOut {
	case "", "oo", "completions", "waits":
	default:
		fatal(fmt.Errorf("unknown -csv series %q (want oo, completions, waits)", *csvOut))
	}

	opts := cloudburst.Options{
		Scheduler:        cloudburst.SchedulerName(*scheduler),
		Bucket:           cloudburst.BucketName(*bucket),
		Batches:          *batches,
		MeanJobsPerBatch: *jobs,
		WorkloadSeed:     *seed,
		NetSeed:          *netSeed,
		JitterCV:         *jitter,
		OOToleranceJobs:  *tol,
		SlackMarginSec:   *margin,
		Rescheduling:     *resched,
		AutoscaleECMax:   *autoscale,
		OutageMTBF:       *outages,
	}
	for i := 0; i < *sites; i++ {
		opts.ExtraECSites = append(opts.ExtraECSites, cloudburst.ECSiteSpec{})
	}
	// Arm on any non-zero value (not just positive) so that negative flags
	// reach the library's validation instead of being silently ignored.
	if *ecRevokeMTBF != 0 || *icCrashMTBF != 0 || *stallMTBF != 0 {
		opts.Faults = &cloudburst.FaultOptions{
			ECRevocationMTBF:     *ecRevokeMTBF,
			ECRevocationWarning:  *ecRevokeWarn,
			ICCrashMTBF:          *icCrashMTBF,
			ICCrashMTTR:          *icCrashMTTR,
			TransferStallMTBF:    *stallMTBF,
			TransferStallTimeout: *stallTimeout,
			MaxRetries:           *retries,
			Seed:                 *faultSeed,
		}
	}
	if *ecRate != 0 || *ecSpotRate != 0 || *budget != 0 || *billing != 0 {
		opts.Cost = &cloudburst.CostOptions{
			OnDemandRate:       *ecRate,
			SpotRate:           *ecSpotRate,
			BillingIntervalSec: *billing,
			Budget:             *budget,
		}
	}
	if *shards != "" {
		so, err := cloudburst.ParseShardSpec(*shards)
		if err != nil {
			fatal(err)
		}
		opts.Shards = so
	}
	if *preset != "" {
		opts = applyPreset(*preset, opts)
	}

	opts.Verify = *verify

	if *serve {
		if *compare || *csvOut != "" || *audit || *chromeOut != "" {
			fatal(fmt.Errorf("-serve streams windows continuously; drop -compare, -csv, -audit and -chrome-trace"))
		}
		var jsonl *cloudburst.JSONLTracer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			jsonl = cloudburst.NewJSONLTracer(f)
			opts.Trace = jsonl
		}
		runServe(opts, serveFlags{
			duration:       *duration,
			window:         *window,
			arrivals:       *arrivals,
			maxJobs:        *maxJobs,
			burstFactor:    *burstFactor,
			checkpointPath: *checkpointPath,
			restorePath:    *restorePath,
			quiet:          *quiet,
		})
		if jsonl != nil {
			if err := jsonl.Close(); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *compare {
		if *traceOut != "" || *chromeOut != "" || *audit {
			fatal(fmt.Errorf("-trace, -chrome-trace and -audit trace a single run; drop -compare"))
		}
		reports, err := cloudburst.Compare(opts)
		if err != nil {
			fatal(err)
		}
		base := reports[0]
		fmt.Printf("%-8s %10s %8s %7s %8s %8s %8s %8s\n",
			"sched", "makespan_s", "speedup", "burst", "IC-util", "EC-util", "stalls", "valleys")
		for _, r := range reports {
			fmt.Printf("%-8s %10.0f %8.2f %7.2f %7.1f%% %7.1f%% %8d %8d\n",
				r.Scheduler, r.Makespan, r.Speedup, r.BurstRatio,
				100*r.ICUtil, 100*r.ECUtil, r.PeakCount, r.ValleyCount)
		}
		fmt.Printf("\nbursting vs IC-only makespan: ")
		for _, r := range reports[1:] {
			fmt.Printf("%s %+.1f%%  ", r.Scheduler, 100*(r.Makespan-base.Makespan)/base.Makespan)
		}
		fmt.Println()
		return
	}

	var jsonl *cloudburst.JSONLTracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		jsonl = cloudburst.NewJSONLTracer(f)
		opts.Trace = jsonl
	}
	// The Chrome exporter and the auditor both replay the full stream, so
	// either one needs the run recorded.
	opts.Audit = *audit || *chromeOut != ""

	report, err := cloudburst.Run(opts)
	if jsonl != nil {
		if cerr := jsonl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
	if *chromeOut != "" {
		if err := writeChromeTrace(*chromeOut, report.TraceEvents()); err != nil {
			fatal(err)
		}
	}

	switch *csvOut {
	case "":
		fmt.Print(report)
		if *ticket > 0 {
			rep := report.FixedTickets(*ticket)
			fmt.Printf("  tickets    %d/%d kept at %.0fs promise (mean lateness %.0fs, worst %.0fs)\n",
				rep.Kept, rep.Jobs, *ticket, rep.MeanLateness, rep.WorstLateness)
		}
		if report.ECMachineSeconds > 0 && *autoscale > 0 {
			fmt.Printf("  elastic EC %.1f machine-hours rented, peak %d machines\n",
				report.ECMachineSeconds/3600, report.ECPeakMachines)
		}
	case "oo":
		fmt.Print(cloudburst.SeriesCSV("ordered_bytes", report.OOSeries()))
	case "completions":
		fmt.Print(cloudburst.SeriesCSV("completed_at", report.CompletionSeries()))
	case "waits":
		fmt.Print(cloudburst.SeriesCSV("inorder_wait", report.InOrderWaitSeries()))
	}

	if *audit {
		a, err := report.Audit()
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(a.Summary())
		if !a.OK() {
			fatal(fmt.Errorf("audit found %d integrity issue(s)", len(a.Issues)))
		}
	}
}

// applyPreset starts from the named registry preset and overlays every
// flag the user set explicitly, so "-preset highvar -jitter 0.3" means the
// highvar regime with jitter lowered to 0.3. Fault, cost and site flags
// carry over unconditionally — no preset arms them.
func applyPreset(name string, flagOpts cloudburst.Options) cloudburst.Options {
	opts, err := cloudburst.Preset(name)
	if err != nil {
		fatal(err)
	}
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["scheduler"] {
		opts.Scheduler = flagOpts.Scheduler
	}
	if set["bucket"] {
		opts.Bucket = flagOpts.Bucket
	}
	if set["batches"] {
		opts.Batches = flagOpts.Batches
	}
	if set["jobs"] {
		opts.MeanJobsPerBatch = flagOpts.MeanJobsPerBatch
	}
	if set["seed"] {
		opts.WorkloadSeed = flagOpts.WorkloadSeed
	}
	if set["netseed"] {
		opts.NetSeed = flagOpts.NetSeed
	}
	if set["jitter"] {
		opts.JitterCV = flagOpts.JitterCV
	}
	if set["tol"] {
		opts.OOToleranceJobs = flagOpts.OOToleranceJobs
	}
	if set["margin"] {
		opts.SlackMarginSec = flagOpts.SlackMarginSec
	}
	if set["resched"] {
		opts.Rescheduling = flagOpts.Rescheduling
	}
	if set["autoscale"] {
		opts.AutoscaleECMax = flagOpts.AutoscaleECMax
	}
	if set["outage-mtbf"] {
		opts.OutageMTBF = flagOpts.OutageMTBF
	}
	opts.ExtraECSites = flagOpts.ExtraECSites
	opts.Faults = flagOpts.Faults
	opts.Cost = flagOpts.Cost
	return opts
}

// runAdvise prints the burst advisor's per-scenario recommendations from a
// sweep resume manifest.
func runAdvise(path string) {
	advice, err := cloudburst.Advise(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d scenario(s) compared from %s\n", len(advice), path)
	sawEstimated := false
	for _, a := range advice {
		fmt.Printf("\nscenario %s\n", a.Scenario)
		base := "baseline"
		if a.Estimated {
			base, sawEstimated = "baseline*", true
		}
		fmt.Printf("  %-9s %-14s makespan %8.0fs\n", base, a.Baseline.Sched, a.Baseline.Metrics.Makespan)
		fmt.Printf("  %-9s %-14s makespan %8.0fs", "best", a.Best.Sched, a.Best.Metrics.Makespan)
		if a.SecondsSaved > 0 {
			if a.Estimated {
				fmt.Printf("  saves ~%.0fs (estimated)", a.SecondsSaved)
			} else {
				fmt.Printf("  saves %.0fs", a.SecondsSaved)
			}
		}
		fmt.Println()
		if a.Best.Metrics.CostRental > 0 {
			fmt.Printf("  rental $%.4f", a.Best.Metrics.CostRental)
			if a.CostPerHourSaved > 0 {
				if a.Estimated {
					fmt.Printf(" (~$%.2f per hour saved, estimated)", a.CostPerHourSaved)
				} else {
					fmt.Printf(" ($%.2f per hour saved)", a.CostPerHourSaved)
				}
			}
			fmt.Println()
		}
		rec := "burst"
		if !a.Burst {
			rec = "stay internal"
		}
		if a.Estimated {
			rec += " (estimated baseline)"
		}
		fmt.Println("  recommendation: " + rec)
	}
	if sawEstimated {
		fmt.Println("\n* estimated baseline: no ICOnly record in this scenario, so the slowest" +
			"\n  bursting run stands in — figures compare bursting strategies against each" +
			"\n  other, not bursting against a measured no-burst run")
	}
}

func writeChromeTrace(path string, events []cloudburst.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cloudburst.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	// Library errors already carry the cloudburst: prefix.
	fmt.Fprintln(os.Stderr, "cloudburst:", strings.TrimPrefix(err.Error(), "cloudburst: "))
	os.Exit(1)
}
