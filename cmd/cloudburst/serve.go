package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cloudburst"
)

// serveFlags carries the streaming-mode flag values from main.
type serveFlags struct {
	duration       time.Duration
	window         time.Duration
	arrivals       string
	maxJobs        int
	burstFactor    float64
	checkpointPath string
	restorePath    string
	quiet          bool
}

// runServe drives the always-on service mode: windows stream to stdout as
// the simulation closes them, SIGINT cancels cleanly (the run drains its
// admitted jobs), and -checkpoint/-restore split the service across
// invocations.
func runServe(opts cloudburst.Options, sf serveFlags) {
	so := cloudburst.ServiceOptions{
		Options:     opts,
		Arrivals:    cloudburst.ArrivalPattern(sf.arrivals),
		BurstFactor: sf.burstFactor,
		DurationSec: sf.duration.Seconds(),
		WindowSec:   sf.window.Seconds(),
		MaxJobs:     sf.maxJobs,
	}
	if sf.checkpointPath != "" {
		so.CheckpointAtEnd = true
	}
	if sf.restorePath != "" {
		blob, err := os.ReadFile(sf.restorePath)
		if err != nil {
			fatal(err)
		}
		so.Restore = blob
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	svc, err := cloudburst.Serve(ctx, so)
	if err != nil {
		fatal(err)
	}
	if !sf.quiet {
		fmt.Printf("%6s %8s %8s %5s %5s %6s %9s %8s %8s %8s %9s\n",
			"window", "start_s", "arrive", "done", "ec", "burst", "thrpt_jph", "ic_util", "ec_util", "p95_s", "oo_MB")
	}
	for w := range svc.Reports() {
		if sf.quiet {
			continue
		}
		fmt.Printf("%6d %8.0f %8d %5d %5d %6.2f %9.1f %7.1f%% %7.1f%% %8.1f %9.1f\n",
			w.Index, w.Start, w.Arrivals, w.Completions, w.ECCompletions, w.BurstRatio,
			3600*w.Throughput, 100*w.ICUtil, 100*w.ECUtil, w.SojournP95,
			float64(w.OrderedBytes)/(1<<20))
	}
	rep, err := svc.Wait()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nserved %.0fs virtual time: %d jobs in %d batches fed, %d delivered, stop: %s\n",
		rep.VirtualTime, rep.Fed, rep.FedBatches, rep.Jobs, rep.StopCause)
	fmt.Printf("fingerprint %016x over %d trace events\n", rep.Fingerprint, rep.TraceEvents)

	if sf.checkpointPath != "" {
		blob, err := svc.Checkpoint()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(sf.checkpointPath, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s (%d bytes)\n", sf.checkpointPath, len(blob))
	}
}
