module cloudburst

go 1.22
