package cloudburst

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"cloudburst/internal/engine"
)

// Checkpoint blob layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "CBCP"
//	4       1     format version (currently 1)
//	5       4     payload length N
//	9       N     JSON payload {service, engine}
//	9+N     8     FNV-64a checksum of bytes [0, 9+N)
//
// The payload carries the full simulation-defining ServiceOptions (so a
// restore needs no out-of-band configuration) and the engine's replay
// cursor. A version bump means the payload schema changed; decode rejects
// unknown versions rather than guessing.
const (
	checkpointMagic   = "CBCP"
	checkpointVersion = 1
	checkpointHeader  = len(checkpointMagic) + 1 + 4
)

// CheckpointError reports a checkpoint blob that cannot be decoded:
// truncated, corrupted, from an unknown format version, or carrying an
// inconsistent payload.
type CheckpointError struct {
	Reason string
}

func (e *CheckpointError) Error() string {
	return "cloudburst: invalid checkpoint: " + e.Reason
}

func cpErr(format string, args ...any) *CheckpointError {
	return &CheckpointError{Reason: fmt.Sprintf(format, args...)}
}

// checkpointFile is the decoded payload of a checkpoint blob.
type checkpointFile struct {
	Service ServiceOptions    `json:"service"`
	Engine  engine.Checkpoint `json:"engine"`
}

func checkpointSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// encodeCheckpoint serializes a suspended run. Runtime-only fields that
// must not leak into the blob — the live Tracer and the Restore blob the
// run itself may have been started from — are cleared first.
func encodeCheckpoint(cf checkpointFile) ([]byte, error) {
	cf.Service.Trace = nil
	cf.Service.Restore = nil
	cf.Service.CheckpointAtEnd = false
	payload, err := json.Marshal(cf)
	if err != nil {
		return nil, fmt.Errorf("cloudburst: encoding checkpoint: %w", err)
	}
	buf := make([]byte, 0, checkpointHeader+len(payload)+8)
	buf = append(buf, checkpointMagic...)
	buf = append(buf, checkpointVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, checkpointSum(buf))
	return buf, nil
}

// decodeCheckpoint validates and decodes a checkpoint blob, returning a
// typed *CheckpointError on any defect.
func decodeCheckpoint(blob []byte) (checkpointFile, error) {
	var cf checkpointFile
	if len(blob) < checkpointHeader+8 {
		return cf, cpErr("truncated: %d bytes, need at least %d", len(blob), checkpointHeader+8)
	}
	if string(blob[:4]) != checkpointMagic {
		return cf, cpErr("bad magic %q", blob[:4])
	}
	if v := blob[4]; v != checkpointVersion {
		return cf, cpErr("unsupported format version %d (this build reads version %d)", v, checkpointVersion)
	}
	n := int(binary.LittleEndian.Uint32(blob[5:9]))
	if n != len(blob)-checkpointHeader-8 {
		return cf, cpErr("payload length %d does not match blob size %d", n, len(blob))
	}
	body := blob[:checkpointHeader+n]
	if got, want := checkpointSum(body), binary.LittleEndian.Uint64(blob[checkpointHeader+n:]); got != want {
		return cf, cpErr("checksum mismatch: computed %016x, stored %016x", got, want)
	}
	if err := json.Unmarshal(blob[checkpointHeader:checkpointHeader+n], &cf); err != nil {
		return cf, cpErr("payload: %v", err)
	}
	switch {
	case cf.Engine.Fired == 0:
		return cf, cpErr("payload records no fired events")
	case cf.Engine.VirtualTime < 0 || cf.Engine.Served <= 0:
		return cf, cpErr("payload clock is inconsistent (t=%v, served=%v)", cf.Engine.VirtualTime, cf.Engine.Served)
	case cf.Engine.FedJobs < 0 || cf.Engine.FedBatches < 0 || cf.Engine.Completed < 0 || cf.Engine.Chunks < 0:
		return cf, cpErr("payload job accounting is negative")
	case cf.Engine.Completed > cf.Engine.FedJobs+cf.Engine.Chunks:
		return cf, cpErr("payload completed %d exceeds admitted %d jobs + %d chunks",
			cf.Engine.Completed, cf.Engine.FedJobs, cf.Engine.Chunks)
	case cf.Service.WindowSec <= 0:
		return cf, cpErr("payload window length %v is not positive", cf.Service.WindowSec)
	}
	return cf, nil
}
