package cloudburst

import (
	"sort"
	"strings"
)

// presetRegistry maps the named base configurations selectable by Preset.
// The CLI -preset/-profiles vocabularies resolve through the same registry
// (see SweepProfileFor), so command-line names and library presets cannot
// drift apart.
var presetRegistry = map[string]func() Options{
	// paper is the experimental setup of Sec. V: 8 IC VMs, 2 EC VMs, six
	// ~15-job batches every three minutes, a diurnal ~600 kB/s upload /
	// ~900 kB/s download pipe with moderate jitter, and the
	// order-preserving scheduler.
	"paper": func() Options { return Options{}.Normalize() },
	// highvar is the paper testbed under the high-variation network regime:
	// bandwidth jitter rises to CV ≈ 0.5, the setting the paper uses to
	// stress the slack rule.
	"highvar": func() Options { return Options{JitterCV: 0.5}.Normalize() },
	// outage is the paper testbed with throttled network outage episodes:
	// roughly every 3000 s both links drop to 20% capacity for ~300 s.
	"outage": func() Options {
		return Options{OutageMTBF: 3000, OutageMeanDuration: 300, OutageThrottle: 0.2}.Normalize()
	},
}

// Preset returns the named base configuration with every default made
// explicit — a plain value, tweak fields freely before passing it to Run.
// Unknown names are rejected with a typed *OptionError naming the
// registered presets; Presets lists them.
func Preset(name string) (Options, error) {
	build, ok := presetRegistry[name]
	if !ok {
		return Options{}, optErr("Preset", name,
			"is not a registered preset (want %s)", strings.Join(Presets(), ", "))
	}
	return build(), nil
}

// Presets returns the registered preset names in sorted order.
func Presets() []string {
	out := make([]string, 0, len(presetRegistry))
	for name := range presetRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SweepProfileFor derives the sweep network profile that reproduces the
// named preset's network regime: running a sweep cell under the returned
// profile yields the same effective Options (equal Fingerprint, network
// fields aside from seeds) as running the preset directly. cmd/sweep's
// -profiles vocabulary resolves through this function, so its names are
// exactly Presets().
func SweepProfileFor(name string) (SweepProfile, error) {
	o, err := Preset(name)
	if err != nil {
		return SweepProfile{}, err
	}
	return SweepProfile{
		Name:               name,
		UploadMeanBW:       o.UploadMeanBW,
		DownloadMeanBW:     o.DownloadMeanBW,
		DiurnalAmplitude:   o.DiurnalAmplitude,
		JitterCV:           o.JitterCV,
		OutageMTBF:         o.OutageMTBF,
		OutageMeanDuration: o.OutageMeanDuration,
		OutageThrottle:     o.OutageThrottle,
	}, nil
}

// PaperTestbed returns the paper's experimental setup (Sec. V) with every
// default made explicit.
//
// Deprecated: use Preset("paper"); the registry is the single source of
// preset vocabulary shared with the CLIs.
func PaperTestbed() Options {
	o, _ := Preset("paper")
	return o
}

// HighVariance is the PaperTestbed under the paper's high-variation network
// regime (bandwidth jitter CV ≈ 0.5).
//
// Deprecated: use Preset("highvar"); the registry is the single source of
// preset vocabulary shared with the CLIs.
func HighVariance() Options {
	o, _ := Preset("highvar")
	return o
}
