package cloudburst

// PaperTestbed returns the paper's experimental setup (Sec. V) with every
// default made explicit: 8 IC VMs, 2 EC VMs, six ~15-job batches every
// three minutes, a diurnal ~600 kB/s upload / ~900 kB/s download pipe with
// moderate jitter, and the order-preserving scheduler. Tweak fields freely
// before passing the result to Run — it is a plain value.
func PaperTestbed() Options {
	return Options{}.Normalize()
}

// HighVariance is the PaperTestbed under the paper's high-variation network
// regime: identical in every respect except that bandwidth jitter rises to
// CV ≈ 0.5, the setting the paper uses to stress the slack rule.
func HighVariance() Options {
	o := PaperTestbed()
	o.JitterCV = 0.5
	return o
}
