package cloudburst

import (
	"math"
	"strings"
	"testing"
)

// fastOpts keeps public-API tests quick.
func fastOpts(s SchedulerName) Options {
	return Options{
		Scheduler:        s,
		Bucket:           Uniform,
		Batches:          3,
		MeanJobsPerBatch: 8,
		WorkloadSeed:     1,
		NetSeed:          1,
	}
}

func TestRunDefaults(t *testing.T) {
	r, err := Run(Options{Batches: 2, MeanJobsPerBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheduler != OrderPreserving || r.Bucket != Uniform {
		t.Fatalf("defaults wrong: %s/%s", r.Scheduler, r.Bucket)
	}
	if r.Makespan <= 0 || r.Jobs == 0 {
		t.Fatalf("empty report: %+v", r)
	}
}

func TestRunVerify(t *testing.T) {
	// A verified run must behave identically to an unverified one: the
	// checker is a passive tracer.
	o := fastOpts(SIBS)
	plain, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Verify = true
	verified, err := Run(o)
	if err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
	if verified.Makespan != plain.Makespan || verified.BurstRatio != plain.BurstRatio {
		t.Fatalf("verify changed the run: %v/%v vs %v/%v",
			verified.Makespan, verified.BurstRatio, plain.Makespan, plain.BurstRatio)
	}
	// Verify composes with Audit and fault injection.
	o.Audit = true
	o.Faults = &FaultOptions{ECRevocationMTBF: 400}
	if _, err := Run(o); err != nil {
		t.Fatalf("verified faulty run failed: %v", err)
	}
	// Compare gives each run its own checker.
	o.Audit = false
	if _, err := Compare(o, Greedy, SIBS); err != nil {
		t.Fatalf("verified compare failed: %v", err)
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range Schedulers() {
		r, err := Run(fastOpts(s))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.Jobs < r.OriginalJobs {
			t.Fatalf("%s: lost jobs", s)
		}
		if r.Speedup <= 0 {
			t.Fatalf("%s: speedup %v", s, r.Speedup)
		}
		if s == ICOnly && r.BurstRatio != 0 {
			t.Fatalf("ICOnly bursted")
		}
	}
}

func TestRunAllBuckets(t *testing.T) {
	for _, b := range Buckets() {
		o := fastOpts(Greedy)
		o.Bucket = b
		r, err := Run(o)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if r.Bucket != b {
			t.Fatalf("bucket echo wrong: %s", r.Bucket)
		}
	}
}

func TestRunUnknownNames(t *testing.T) {
	if _, err := Run(Options{Scheduler: "nope", Batches: 1}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := Run(Options{Bucket: "nope", Batches: 1}); err == nil {
		t.Fatal("unknown bucket accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastOpts(OrderPreserving))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastOpts(OrderPreserving))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.BurstRatio != b.BurstRatio {
		t.Fatal("identical options produced different reports")
	}
}

func TestCompareSharesWorkload(t *testing.T) {
	rs, err := Compare(fastOpts(ICOnly), ICOnly, Greedy, OrderPreserving)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("reports = %d", len(rs))
	}
	// Same workload: identical original job counts and t_seq.
	for _, r := range rs[1:] {
		if r.OriginalJobs != rs[0].OriginalJobs {
			t.Fatal("compare used different workloads")
		}
		if math.Abs(r.TSeq-rs[0].TSeq) > 1e-9 {
			t.Fatal("compare t_seq differs")
		}
	}
}

func TestCompareDefaultSet(t *testing.T) {
	rs, err := Compare(fastOpts(ICOnly))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("default compare set = %d schedulers", len(rs))
	}
}

func TestReportString(t *testing.T) {
	r, err := Run(fastOpts(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"Greedy", "makespan", "burst", "valleys"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestReportSeries(t *testing.T) {
	o := fastOpts(Greedy)
	o.OOToleranceJobs = 2
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	oo := r.OOSeries()
	if len(oo) == 0 {
		t.Fatal("empty OO series")
	}
	for i := 1; i < len(oo); i++ {
		if oo[i].V < oo[i-1].V {
			t.Fatal("OO series must be non-decreasing")
		}
	}
	comp := r.CompletionSeries()
	if len(comp) != r.Jobs {
		t.Fatalf("completion series %d != jobs %d", len(comp), r.Jobs)
	}
	waits := r.InOrderWaitSeries()
	if len(waits) != r.Jobs-1 {
		t.Fatalf("wait series %d != jobs-1 %d", len(waits), r.Jobs-1)
	}
}

func TestRelativeOOSeries(t *testing.T) {
	rs, err := Compare(fastOpts(ICOnly), ICOnly, OrderPreserving)
	if err != nil {
		t.Fatal(err)
	}
	rel := rs[1].RelativeOOSeries(rs[0])
	if len(rel) == 0 {
		t.Fatal("empty relative series")
	}
	self := rs[0].RelativeOOSeries(rs[0])
	for _, p := range self {
		if p.V != 0 {
			t.Fatal("self-relative series must be zero")
		}
	}
}

func TestCompletionsAccessor(t *testing.T) {
	r, err := Run(fastOpts(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	cs := r.Completions()
	if len(cs) != r.Jobs {
		t.Fatalf("completions %d != jobs %d", len(cs), r.Jobs)
	}
	bursted := 0
	for i, c := range cs {
		if c.Seq != i {
			t.Fatalf("completions not seq-ordered at %d", i)
		}
		if c.CompletedAt < c.ArrivedAt {
			t.Fatal("completion precedes arrival")
		}
		if c.Bursted {
			bursted++
		}
	}
	if got := float64(bursted) / float64(len(cs)); math.Abs(got-r.BurstRatio) > 1e-9 {
		t.Fatalf("bursted fraction %v != burst ratio %v", got, r.BurstRatio)
	}
}

func TestBatchBurstRatios(t *testing.T) {
	o := fastOpts(Greedy)
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ratios := r.BatchBurstRatios()
	if len(ratios) != o.Batches {
		t.Fatalf("batch ratios = %d, want %d", len(ratios), o.Batches)
	}
	var weighted float64
	counts := map[int]int{}
	for _, c := range r.Completions() {
		counts[c.Batch]++
	}
	for b, ratio := range ratios {
		weighted += ratio * float64(counts[b])
	}
	if math.Abs(weighted/float64(r.Jobs)-r.BurstRatio) > 1e-9 {
		t.Fatal("eq. (12) identity violated: batch ratios don't aggregate to the run ratio")
	}
}

func TestSeriesCSV(t *testing.T) {
	csv := SeriesCSV("oo", []Point{{0, 1}, {120, 2.5}})
	if !strings.HasPrefix(csv, "t,oo\n") || !strings.Contains(csv, "120.000,2.5") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestHighJitterOption(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.JitterCV = 0.5
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
}

func TestSlackMarginReducesBursting(t *testing.T) {
	loose := fastOpts(OrderPreserving)
	loose.Batches = 4
	loose.MeanJobsPerBatch = 12
	tight := loose
	tight.SlackMarginSec = 1e9
	a, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if b.BurstRatio != 0 {
		t.Fatalf("infinite margin still bursted %v", b.BurstRatio)
	}
	if a.BurstRatio == 0 {
		t.Fatal("loaded Op run never bursted")
	}
}

func TestReschedulingOption(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.Rescheduling = true
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs == 0 {
		t.Fatal("rescheduled run empty")
	}
}

func TestTicketReports(t *testing.T) {
	r, err := Run(fastOpts(OrderPreserving))
	if err != nil {
		t.Fatal(err)
	}
	generous := r.FixedTickets(1e9)
	if generous.KeptRatio != 1 || generous.Kept != r.Jobs {
		t.Fatalf("generous ticket not kept: %+v", generous)
	}
	impossible := r.FixedTickets(0.001)
	if impossible.Kept != 0 || impossible.MeanLateness <= 0 {
		t.Fatalf("impossible ticket kept: %+v", impossible)
	}
	// The minimal uniform ticket must keep its fraction.
	q := r.MinimalUniformTicket(0.9)
	rep := r.FixedTickets(q)
	if rep.KeptRatio < 0.9 {
		t.Fatalf("minimal ticket %v kept only %v", q, rep.KeptRatio)
	}
	// Proportional and positional policies return sane shapes.
	if p := r.ProportionalTickets(600, 10); p.Jobs != r.Jobs {
		t.Fatal("proportional jobs mismatch")
	}
	if p := r.PositionalTickets(300, 60); p.KeptRatio < 0 || p.KeptRatio > 1 {
		t.Fatal("positional ratio out of range")
	}
}

func TestTicketsCorrelateWithOrdering(t *testing.T) {
	// The paper: the OO metric is "directly correlated" with ticket
	// satisfaction. A positional (in-order) promise must be kept at least
	// as often by the scheduler with the better ordered-output behaviour
	// on the same workload. We assert only the weaker sanity property that
	// both schedulers' reports are well-formed and comparable.
	rs, err := Compare(fastOpts(ICOnly), Greedy, OrderPreserving)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		rep := r.PositionalTickets(120, 45)
		if rep.Jobs != r.Jobs || rep.Kept > rep.Jobs {
			t.Fatalf("%s: malformed ticket report %+v", r.Scheduler, rep)
		}
	}
}

func TestOutageInjection(t *testing.T) {
	clean := fastOpts(Greedy)
	clean.Batches = 4
	clean.MeanJobsPerBatch = 12
	flaky := clean
	flaky.OutageMTBF = 300
	flaky.OutageMeanDuration = 120
	a, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(flaky)
	if err != nil {
		t.Fatal(err)
	}
	if b.Jobs != a.Jobs {
		t.Fatal("outages lost jobs")
	}
	// Hard outages on a bursting scheduler should not make things faster.
	if b.Makespan < a.Makespan*0.99 {
		t.Fatalf("outaged run faster than clean: %v vs %v", b.Makespan, a.Makespan)
	}
}

func TestOutageValidation(t *testing.T) {
	o := fastOpts(Greedy)
	o.OutageMTBF = 300
	o.OutageThrottle = 1.5 // invalid
	_, err := Run(o)
	if err == nil {
		t.Fatal("invalid throttle did not error")
	}
	if !strings.HasPrefix(err.Error(), "cloudburst:") {
		t.Fatalf("error not cloudburst-prefixed: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		want string // substring of the expected error
	}{
		{"negative batches", func(o *Options) { o.Batches = -1 }, "Batches"},
		{"negative jobs per batch", func(o *Options) { o.MeanJobsPerBatch = -3 }, "MeanJobsPerBatch"},
		{"negative batch interval", func(o *Options) { o.BatchIntervalSec = -1 }, "BatchIntervalSec"},
		{"negative IC machines", func(o *Options) { o.ICMachines = -2 }, "ICMachines"},
		{"negative EC machines", func(o *Options) { o.ECMachines = -2 }, "ECMachines"},
		{"negative upload BW", func(o *Options) { o.UploadMeanBW = -1 }, "UploadMeanBW"},
		{"negative download BW", func(o *Options) { o.DownloadMeanBW = -1 }, "DownloadMeanBW"},
		{"amplitude above one", func(o *Options) { o.DiurnalAmplitude = 1.5 }, "DiurnalAmplitude"},
		{"negative amplitude", func(o *Options) { o.DiurnalAmplitude = -0.1 }, "DiurnalAmplitude"},
		{"negative jitter", func(o *Options) { o.JitterCV = -0.2 }, "JitterCV"},
		{"negative outage MTBF", func(o *Options) { o.OutageMTBF = -5 }, "OutageMTBF"},
		{"negative outage duration", func(o *Options) { o.OutageMTBF = 300; o.OutageMeanDuration = -1 }, "OutageMeanDuration"},
		{"throttle out of range", func(o *Options) { o.OutageMTBF = 300; o.OutageThrottle = -0.5 }, "OutageThrottle"},
		{"negative autoscale max", func(o *Options) { o.AutoscaleECMax = -1 }, "AutoscaleECMax"},
		{"negative boot delay", func(o *Options) { o.AutoscaleECMax = 4; o.AutoscaleBootDelay = -1 }, "AutoscaleBootDelay"},
		{"negative target wait", func(o *Options) { o.AutoscaleECMax = 4; o.AutoscaleTargetWait = -1 }, "AutoscaleTargetWait"},
		{"fleet above autoscale max", func(o *Options) { o.AutoscaleECMax = 2; o.ECMachines = 5 }, "AutoscaleECMax"},
		{"negative OO tolerance", func(o *Options) { o.OOToleranceJobs = -1 }, "OOToleranceJobs"},
		{"negative OO interval", func(o *Options) { o.OOSampleInterval = -60 }, "OOSampleInterval"},
		{"negative site machines", func(o *Options) { o.ExtraECSites = []ECSiteSpec{{Machines: -1}} }, "ExtraECSites[0].Machines"},
		{"negative site upload BW", func(o *Options) { o.ExtraECSites = []ECSiteSpec{{UploadMeanBW: -1}} }, "ExtraECSites[0].UploadMeanBW"},
		{"negative site jitter", func(o *Options) { o.ExtraECSites = []ECSiteSpec{{JitterCV: -1}} }, "ExtraECSites[0].JitterCV"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := fastOpts(OrderPreserving)
			tc.mut(&o)
			_, err := Run(o)
			if err == nil {
				t.Fatal("invalid options did not error")
			}
			if !strings.HasPrefix(err.Error(), "cloudburst:") {
				t.Fatalf("error not cloudburst-prefixed: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// The zero value plus defaults must stay valid.
	if _, err := Run(Options{Batches: 1, MeanJobsPerBatch: 2}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestAutoscaleECOption(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.Batches = 5
	o.MeanJobsPerBatch = 15
	o.ECMachines = 1
	o.AutoscaleECMax = 6
	o.AutoscaleTargetWait = 120
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.ECPeakMachines <= 1 {
		t.Fatalf("autoscaler never grew the fleet: peak %d", r.ECPeakMachines)
	}
	if r.ECMachineSeconds <= 0 {
		t.Fatal("no rental accounting")
	}
	fixed := o
	fixed.AutoscaleECMax = 0
	fixed.ECMachines = 6
	rf, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	// The elastic fleet should rent meaningfully less machine time than
	// holding 6 machines for the whole run.
	if r.ECMachineSeconds >= rf.ECMachineSeconds {
		t.Fatalf("elastic rented %v >= fixed %v", r.ECMachineSeconds, rf.ECMachineSeconds)
	}
}

func TestExtraECSitesOption(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.Batches = 5
	o.MeanJobsPerBatch = 15
	o.ExtraECSites = []ECSiteSpec{{Machines: 2}}
	multi, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.SiteBursts) != 1 || len(multi.SiteUtils) != 1 {
		t.Fatalf("site diagnostics missing: %+v", multi)
	}
	single := o
	single.ExtraECSites = nil
	base, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if multi.BurstRatio < base.BurstRatio {
		t.Fatalf("extra provider reduced bursting: %v vs %v", multi.BurstRatio, base.BurstRatio)
	}
}
