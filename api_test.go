package cloudburst

// Tests for the context-aware, typed-error public API: OptionError and
// errors.As, Options.Normalize, RunContext/CompareContext cancellation, the
// preset constructors, and fault-injection runs through the root package.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestOptionErrorTyped(t *testing.T) {
	_, err := Run(Options{Batches: -3})
	if err == nil {
		t.Fatal("invalid options did not error")
	}
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T does not unwrap to *OptionError", err)
	}
	if oe.Field != "Batches" || oe.Value != -3 || oe.Reason == "" {
		t.Fatalf("OptionError = %+v, want Field=Batches Value=-3 with a reason", *oe)
	}
	if got := oe.Error(); got != "cloudburst: Batches -3 must not be negative" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestOptionErrorOnFaults(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.Faults = &FaultOptions{ECRevocationMTBF: -1}
	_, err := Run(o)
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("fault validation error %v is not an *OptionError", err)
	}
	if oe.Field != "Faults.ECRevocationMTBF" {
		t.Fatalf("Field = %q", oe.Field)
	}
}

func TestOptionErrorOnUnknownNames(t *testing.T) {
	var oe *OptionError
	if _, err := Run(Options{Scheduler: "nope", Batches: 1}); !errors.As(err, &oe) || oe.Field != "Scheduler" {
		t.Fatalf("unknown scheduler: err=%v", err)
	}
	if _, err := Run(Options{Bucket: "nope", Batches: 1}); !errors.As(err, &oe) || oe.Field != "Bucket" {
		t.Fatalf("unknown bucket: err=%v", err)
	}
}

func TestNormalizeIdempotentAndEquivalent(t *testing.T) {
	withFaults := func(o Options) Options {
		o.Faults = &FaultOptions{ECRevocationMTBF: 400, ICCrashMTBF: 600, ICCrashMTTR: 300}
		return o
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"fast op", fastOpts(OrderPreserving)},
		{"fast sibs with faults", withFaults(fastOpts(SIBS))},
		{"paper testbed with faults", withFaults(PaperTestbed())},
		{"high variance with faults", withFaults(HighVariance())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			n := o.Normalize()
			if !reflect.DeepEqual(n, n.Normalize()) {
				t.Fatal("Normalize is not idempotent")
			}
			if n.ICMachines != 8 || n.ECMachines != 2 || n.DiurnalAmplitude != 0.3 {
				t.Fatalf("unexpected defaults: %+v", n)
			}
			if o.Faults != nil && (n.Faults == nil || n.Faults.MaxRetries == 0) {
				t.Fatalf("fault options not normalized: %+v", n.Faults)
			}
			// Normalizing must not change behaviour: the explicit-default run
			// is the same simulation as the zero-default run.
			r1, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(n)
			if err != nil {
				t.Fatal(err)
			}
			if r1.String() != r2.String() || r1.Makespan != r2.Makespan {
				t.Fatalf("normalized run diverged:\n%s\n%s", r1, r2)
			}
			if o.Fingerprint() != n.Fingerprint() {
				t.Fatal("fingerprint differs before and after Normalize")
			}
		})
	}
}

func TestNormalizeAutoscaleFleet(t *testing.T) {
	n := Options{AutoscaleECMax: 4}.Normalize()
	if n.ECMachines != 1 {
		t.Fatalf("autoscaled fleet normalizes to %d machines, want 1", n.ECMachines)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, fastOpts(OrderPreserving))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompareContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareContext(ctx, fastOpts(OrderPreserving))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompareContextMatchesSequentialRuns(t *testing.T) {
	o := fastOpts(OrderPreserving)
	reports, err := CompareContext(context.Background(), o, Greedy, OrderPreserving, SIBS)
	if err != nil {
		t.Fatal(err)
	}
	names := []SchedulerName{Greedy, OrderPreserving, SIBS}
	for i, name := range names {
		oo := o
		oo.Scheduler = name
		want, err := Run(oo)
		if err != nil {
			t.Fatal(err)
		}
		if reports[i].Scheduler != name {
			t.Fatalf("report %d is %s, want %s", i, reports[i].Scheduler, name)
		}
		if reports[i].String() != want.String() {
			t.Fatalf("concurrent Compare diverged from sequential Run for %s:\n%s\n%s",
				name, reports[i], want)
		}
	}
}

func TestPresets(t *testing.T) {
	pt := PaperTestbed()
	if pt.ICMachines != 8 || pt.ECMachines != 2 || pt.Scheduler != OrderPreserving {
		t.Fatalf("PaperTestbed = %+v", pt)
	}
	hv := HighVariance()
	if hv.JitterCV != 0.5 {
		t.Fatalf("HighVariance JitterCV = %v, want 0.5", hv.JitterCV)
	}
	hv.JitterCV = pt.JitterCV
	if !reflect.DeepEqual(pt, hv) {
		t.Fatal("HighVariance differs from PaperTestbed beyond JitterCV")
	}
	if _, err := Run(pt); err != nil {
		t.Fatalf("PaperTestbed run failed: %v", err)
	}
}

func TestFaultRunThroughRootAPI(t *testing.T) {
	o := fastOpts(OrderPreserving)
	o.Batches = 5
	o.MeanJobsPerBatch = 12
	o.Audit = true
	o.Faults = &FaultOptions{ECRevocationMTBF: 150}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.ECRevocations != 2 {
		t.Fatalf("ECRevocations = %d, want the whole fleet (2)", r.ECRevocations)
	}
	if r.Fallbacks == 0 {
		t.Fatal("total revocation produced no fallbacks")
	}
	if !strings.Contains(r.String(), "faults") {
		t.Fatalf("report does not summarize faults:\n%s", r)
	}
	a, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK() {
		t.Fatalf("fault run audit found issues: %v", a.Issues)
	}
	// Determinism under faults: the same options reproduce the same report.
	again, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != r.String() || again.Makespan != r.Makespan {
		t.Fatal("fault run is not deterministic")
	}
}

func TestFaultRunWithICCrashAndStalls(t *testing.T) {
	o := fastOpts(SIBS)
	o.Batches = 5
	o.MeanJobsPerBatch = 12
	o.Audit = true
	o.Faults = &FaultOptions{
		ICCrashMTBF:       500,
		TransferStallMTBF: 500,
	}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.ICCrashes == 0 && r.TransferStalls == 0 {
		t.Skip("no faults landed inside this run's horizon")
	}
	a, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !a.OK() {
		t.Fatalf("audit issues: %v", a.Issues)
	}
}
