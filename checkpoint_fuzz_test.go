package cloudburst

// Fuzz coverage for the checkpoint codec: decodeCheckpoint must never
// panic on arbitrary bytes; every rejection must be a typed, prefixed
// *CheckpointError; and any blob it accepts must survive a re-encode /
// re-decode round trip with the replay cursor intact.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cloudburst/internal/engine"
)

// fuzzSeedBlob builds a realistic valid checkpoint without running a
// simulation, so the fuzzer starts from the interesting region of the
// input space.
func fuzzSeedBlob(t interface{ Fatalf(string, ...any) }) []byte {
	blob, err := encodeCheckpoint(checkpointFile{
		Service: ServiceOptions{
			Options:   Options{WorkloadSeed: 3, NetSeed: 5},
			WindowSec: 600,
		}.normalizeService(),
		Engine: engine.Checkpoint{
			Fired:       1234,
			VirtualTime: 1690.5,
			Served:      1700,
			FedJobs:     40,
			FedBatches:  10,
			Chunks:      6,
			Completed:   31,
			Windows:     2,
			Fingerprint: 0xdeadbeefcafe,
			Events:      321,
		},
	})
	if err != nil {
		t.Fatalf("encoding seed checkpoint: %v", err)
	}
	return blob
}

func FuzzCheckpointRoundTrip(f *testing.F) {
	valid := fuzzSeedBlob(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CBCP"))
	f.Add(append([]byte("CBCP\x01\x00\x00\x00\x00"), make([]byte, 8)...))
	truncated := append([]byte(nil), valid[:len(valid)-5]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, blob []byte) {
		cf, err := decodeCheckpoint(blob)
		if err != nil {
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *CheckpointError: %T %v", err, err)
			}
			if !strings.HasPrefix(err.Error(), "cloudburst: invalid checkpoint: ") {
				t.Fatalf("unprefixed checkpoint error: %q", err.Error())
			}
			return
		}
		// Accepted blobs must round-trip: re-encoding the decoded file and
		// decoding again lands on the same payload.
		blob2, err := encodeCheckpoint(cf)
		if err != nil {
			t.Fatalf("re-encoding accepted checkpoint: %v", err)
		}
		cf2, err := decodeCheckpoint(blob2)
		if err != nil {
			t.Fatalf("re-decoding re-encoded checkpoint: %v", err)
		}
		if cf2.Engine != cf.Engine {
			t.Fatalf("replay cursor drifted through round trip:\nbefore: %+v\nafter:  %+v",
				cf.Engine, cf2.Engine)
		}
		// encode scrubs runtime-only fields; compare the rest.
		scrubbed := cf.Service
		scrubbed.Trace = nil
		scrubbed.Restore = nil
		scrubbed.CheckpointAtEnd = false
		if !reflect.DeepEqual(cf2.Service, scrubbed) {
			t.Fatalf("service config drifted through round trip:\nbefore: %+v\nafter:  %+v",
				scrubbed, cf2.Service)
		}
	})
}

// TestCheckpointRoundTripSeed pins the seed blob's behaviour outside the
// fuzzer so `go test` exercises the round trip unconditionally.
func TestCheckpointRoundTripSeed(t *testing.T) {
	blob := fuzzSeedBlob(t)
	cf, err := decodeCheckpoint(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cf.Engine.Fired != 1234 || cf.Engine.Fingerprint != 0xdeadbeefcafe {
		t.Fatalf("cursor mangled: %+v", cf.Engine)
	}
	if cf.Service.WindowSec != 600 || cf.Service.Arrivals != DiurnalArrivals {
		t.Fatalf("service config mangled: %+v", cf.Service)
	}
}
