// Quickstart: run the paper's test-bed scenario once per scheduler and
// print the SLA reports — the fastest way to see slack-gated cloud
// bursting beat the IC-only baseline.
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	// The paper's test bed with every default explicit; only the seeds vary.
	opts := cloudburst.PaperTestbed()
	opts.WorkloadSeed = 1
	opts.NetSeed = 1

	reports, err := cloudburst.Compare(opts,
		cloudburst.ICOnly, cloudburst.Greedy, cloudburst.OrderPreserving, cloudburst.SIBS)
	if err != nil {
		log.Fatal(err)
	}

	base := reports[0]
	for _, r := range reports {
		fmt.Println(r)
	}
	fmt.Println("makespan vs IC-only baseline:")
	for _, r := range reports[1:] {
		fmt.Printf("  %-16s %+.1f%%\n", r.Scheduler, 100*(r.Makespan-base.Makespan)/base.Makespan)
	}

	// The OO metric: how much ordered output the downstream printer could
	// consume halfway through the IC-only run.
	mid := base.Makespan / 2
	fmt.Printf("\nordered data available at t=%.0fs (tolerance 0):\n", mid)
	for _, r := range reports {
		var atMid float64
		for _, p := range r.OOSeries() {
			if p.T <= mid {
				atMid = p.V
			}
		}
		fmt.Printf("  %-16s %6.0f MB\n", r.Scheduler, atMid/(1<<20))
	}
}
