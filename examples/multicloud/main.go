// Multicloud: bursting to a pool of providers — the scenario the paper's
// introduction anticipates ("one could possibly choose from a pool of
// Cloud Providers at run-time"). The facility keeps its 8-machine internal
// cloud and signs up with two external providers with different network
// paths; the scheduler answers the paper's "where" question per job from
// its learned per-provider bandwidth models.
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	base := cloudburst.Options{
		Scheduler:        cloudburst.OrderPreserving,
		Bucket:           cloudburst.Uniform,
		Batches:          8,
		MeanJobsPerBatch: 15,
		WorkloadSeed:     7,
		NetSeed:          7,
	}

	fmt.Println("== one provider (the paper's setting) ==")
	one, err := cloudburst.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(one)

	fmt.Println("== two providers: same hardware, second independent pipe ==")
	two := base
	two.ExtraECSites = []cloudburst.ECSiteSpec{{Machines: 2}}
	r2, err := cloudburst.Run(two)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r2)
	fmt.Printf("provider shares: primary %d jobs, secondary %d jobs (util %.0f%%)\n\n",
		countPrimary(r2), r2.SiteBursts[0], 100*r2.SiteUtils[0])

	fmt.Println("== asymmetric pool: provider B has twice the bandwidth ==")
	asym := base
	asym.ExtraECSites = []cloudburst.ECSiteSpec{{
		Machines:       3,
		UploadMeanBW:   1200 * 1024,
		DownloadMeanBW: 1500 * 1024,
	}}
	r3, err := cloudburst.Run(asym)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r3)
	fmt.Printf("provider shares: primary %d jobs, fast secondary %d jobs (util %.0f%%)\n\n",
		countPrimary(r3), r3.SiteBursts[0], 100*r3.SiteUtils[0])

	fmt.Printf("makespan: one provider %.0fs, two equal %.0fs (%+.1f%%), asymmetric %.0fs (%+.1f%%)\n",
		one.Makespan,
		r2.Makespan, 100*(r2.Makespan-one.Makespan)/one.Makespan,
		r3.Makespan, 100*(r3.Makespan-one.Makespan)/one.Makespan)
}

// countPrimary derives the primary-EC burst count from the completions.
func countPrimary(r *cloudburst.Report) int {
	total := 0
	for _, c := range r.Completions() {
		if c.Bursted {
			total++
		}
	}
	for _, s := range r.SiteBursts {
		total -= s
	}
	return total
}
