// Netcalibration: the autonomic network layer in isolation — the behaviour
// behind the paper's Fig. 4. A prober issues periodic 1 MB test transfers
// over a diurnal, jittery pipe; the time-of-day predictor learns the
// profile slot by slot while the thread tuner converges on the parallelism
// that fills the pipe at each hour.
package main

import (
	"fmt"

	"cloudburst/internal/netsim"
	"cloudburst/internal/sim"
	"cloudburst/internal/stats"
)

func main() {
	eng := sim.NewEngine()

	// Hidden truth: a 600 kB/s pipe with a strong day/night swing and 20%
	// sporadic jitter. The learner never reads this directly.
	truth := netsim.DiurnalProfile(600*1024, 0.5)
	link := netsim.NewLink(eng, netsim.LinkConfig{
		Name:     "uplink",
		Profile:  truth,
		JitterCV: 0.2,
		Threads:  netsim.DefaultThreadModel(),
	}, stats.NewRNG(2026))

	predictor := netsim.NewPredictor(24, 0.3, 300*1024) // prior: 300 kB/s
	tuner := netsim.NewTuner(link.ThreadModel(), 1)
	prober := netsim.NewProber(eng, link, predictor, tuner, netsim.ProberConfig{Period: 300})

	// Watch the estimate converge over three days.
	fmt.Println("hour-by-hour learning (estimate in kB/s, true mean in kB/s, threads):")
	fmt.Printf("%-6s %9s %9s %8s\n", "time", "estimate", "truth", "threads")
	for day := 0; day < 3; day++ {
		for hour := 0; hour < 24; hour += 6 {
			t := float64(day)*netsim.Day + float64(hour)*3600
			eng.RunUntil(t)
			fmt.Printf("d%d %02d:00 %9.0f %9.0f %8d\n",
				day, hour, predictor.Predict(t)/1024, truth.MeanAt(t)/1024, tuner.Threads())
		}
	}
	prober.Stop()

	// Final per-slot model vs truth — Fig. 4(a).
	fmt.Println("\nlearned time-of-day profile after 3 days (kB/s):")
	est := predictor.SlotEstimates()
	for h := 0; h < 24; h += 2 {
		bar := int(est[h] / 1024 / 25)
		fmt.Printf("%02d:00 %7.0f (true %4.0f) %s\n",
			h, est[h]/1024, truth.Slots[h]/1024, barString(bar))
	}
	fmt.Printf("\n%d probes, %d tuner observations\n",
		prober.Count(), len(tuner.History()))

	// Thread-count statistics per hour band — Fig. 4(b).
	fmt.Println("\ntuned threads by time of day:")
	perHour := map[int]*stats.Summary{}
	for _, s := range tuner.History() {
		h := int(s.T/3600) % 24
		if perHour[h] == nil {
			perHour[h] = &stats.Summary{}
		}
		perHour[h].Add(float64(s.Threads))
	}
	for h := 0; h < 24; h += 4 {
		if perHour[h] == nil {
			continue
		}
		fmt.Printf("%02d:00 mean threads %.1f (offered %4.0f kB/s)\n",
			h, perHour[h].Mean(), truth.Slots[h]/1024)
	}
}

func barString(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
