// Printshop: the paper's motivating scenario end to end. A production
// printing facility processes large document jobs (newspapers, statements,
// marketing runs) ahead of physical production. The downstream press
// consumes outputs in order, so the shop cares about the OO metric as much
// as the makespan; this example contrasts the Greedy and Order Preserving
// schedulers under a congested afternoon with high network variation and
// prints what the press operator would see.
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	// A heavy afternoon: the high-variance preset (jitter CV 0.5) with ten
	// batches of ~18 large-biased jobs; the press tolerates being at most
	// 4 jobs out of order.
	base := cloudburst.HighVariance()
	base.Bucket = cloudburst.Large
	base.Batches = 10
	base.MeanJobsPerBatch = 18
	base.OOToleranceJobs = 4
	base.WorkloadSeed = 2026
	base.NetSeed = 7

	reports, err := cloudburst.Compare(base,
		cloudburst.ICOnly, cloudburst.Greedy, cloudburst.OrderPreserving)
	if err != nil {
		log.Fatal(err)
	}
	icOnly, greedy, op := reports[0], reports[1], reports[2]

	fmt.Println("== print shop afternoon: 10 batches, large documents, flaky pipe ==")
	for _, r := range reports {
		fmt.Println(r)
	}

	// Press-side view: how long does the press stall waiting for the next
	// in-order job?
	fmt.Println("press stalls (in-order consumer):")
	for _, r := range reports {
		fmt.Printf("  %-8s %3d stalls, %6.0fs total, worst %5.0fs\n",
			r.Scheduler, r.PeakCount, r.TotalStall, r.MaxPeak)
	}

	// Ordered-data availability relative to keeping everything in-house:
	// positive means the press can run faster than with the IC alone.
	fmt.Println("\nmean ordered-data advantage over IC-only (MB):")
	for _, r := range []*cloudburst.Report{greedy, op} {
		rel := r.RelativeOOSeries(icOnly)
		var sum float64
		for _, p := range rel {
			sum += p.V
		}
		fmt.Printf("  %-8s %8.0f\n", r.Scheduler, sum/float64(len(rel))/(1<<20))
	}

	// Burst decisions batch by batch: when did each scheduler reach for
	// the external cloud?
	fmt.Println("\nburst ratio per batch:")
	fmt.Printf("  %-8s", "batch")
	for b := 0; b < base.Batches; b++ {
		fmt.Printf("%5d", b)
	}
	fmt.Println()
	for _, r := range []*cloudburst.Report{greedy, op} {
		ratios := r.BatchBurstRatios()
		fmt.Printf("  %-8s", r.Scheduler)
		for b := 0; b < base.Batches; b++ {
			fmt.Printf("%5.2f", ratios[b])
		}
		fmt.Println()
	}

	if op.TotalStall < greedy.TotalStall {
		fmt.Println("\nslack-gated bursting kept the press fed better than greedy placement.")
	} else {
		fmt.Println("\nthis seed favoured greedy placement — rerun with another NetSeed to see the variance.")
	}
}
