// Academic: the paper's Sec. VII extension — applying the cloud-bursting
// schedulers to an academic computing environment with multiple job
// classes. A university cluster (the "internal cloud") handles mixed
// workloads; during result-submission crunch weeks it bursts to a rented
// external cloud. This example sweeps the crunch intensity and shows when
// bursting starts to pay and how the slack margin trades throughput for
// order preservation.
package main

import (
	"fmt"
	"log"

	"cloudburst"
)

func main() {
	fmt.Println("== academic cluster: load sweep ==")
	fmt.Printf("%-10s %-9s %10s %8s %7s %8s\n",
		"load", "sched", "makespan_s", "speedup", "burst", "EC-util")
	for _, jobsPerBatch := range []float64{6, 12, 20, 30} {
		for _, s := range []cloudburst.SchedulerName{cloudburst.ICOnly, cloudburst.OrderPreserving} {
			r, err := cloudburst.Run(cloudburst.Options{
				Scheduler:        s,
				Bucket:           cloudburst.Uniform,
				Batches:          5,
				MeanJobsPerBatch: jobsPerBatch,
				WorkloadSeed:     42,
				NetSeed:          42,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.0f %-9s %10.0f %8.2f %7.2f %7.1f%%\n",
				jobsPerBatch, r.Scheduler, r.Makespan, r.Speedup, r.BurstRatio, 100*r.ECUtil)
		}
	}
	fmt.Println("\nbursting pays once the local cluster saturates; at light load the")
	fmt.Println("slack rule keeps everything in-house and the EC bill stays at zero.")

	// Crunch week: how conservative should the slack margin be when the
	// department also wants results in submission order?
	fmt.Println("\n== crunch week: slack margin τ sweep (Op, heavy load) ==")
	fmt.Printf("%-8s %10s %7s %8s %9s\n", "tau_s", "makespan_s", "burst", "stalls", "valleys")
	for _, margin := range []float64{0, 120, 300, 900} {
		r, err := cloudburst.Run(cloudburst.Options{
			Scheduler:        cloudburst.OrderPreserving,
			Bucket:           cloudburst.Uniform,
			Batches:          5,
			MeanJobsPerBatch: 25,
			SlackMarginSec:   margin,
			WorkloadSeed:     42,
			NetSeed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f %10.0f %7.2f %8d %9d\n",
			margin, r.Makespan, r.BurstRatio, r.PeakCount, r.ValleyCount)
	}
	fmt.Println("\nlarger margins burst less: fewer out-of-order surprises, longer makespan.")

	// Rescheduling strategies: do the Sec. IV-D mitigations help when
	// estimates are noisy?
	fmt.Println("\n== rescheduling strategies on vs off (Op, heavy load, flaky pipe) ==")
	for _, resched := range []bool{false, true} {
		r, err := cloudburst.Run(cloudburst.Options{
			Scheduler:        cloudburst.OrderPreserving,
			Bucket:           cloudburst.Large,
			Batches:          5,
			MeanJobsPerBatch: 25,
			JitterCV:         0.5,
			Rescheduling:     resched,
			WorkloadSeed:     42,
			NetSeed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rescheduling=%-5v makespan=%7.0fs burst=%.2f stalls=%d\n",
			resched, r.Makespan, r.BurstRatio, r.PeakCount)
	}
}
