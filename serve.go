package cloudburst

import (
	"context"
	"errors"

	"cloudburst/internal/engine"
	"cloudburst/internal/invariant"
	"cloudburst/internal/sched"
	"cloudburst/internal/window"
	"cloudburst/internal/workload"
)

// ArrivalPattern selects the shape of the open-ended arrival process used
// by Serve.
type ArrivalPattern string

// The available arrival patterns.
const (
	// SteadyArrivals holds the batch-size rate flat at MeanJobsPerBatch.
	SteadyArrivals ArrivalPattern = "steady"
	// DiurnalArrivals follows the production day-shape (see
	// workload.DiurnalDemand): quiet nights, a business-day plateau and an
	// afternoon peak. This is the default.
	DiurnalArrivals ArrivalPattern = "diurnal"
	// FlashCrowdArrivals is DiurnalArrivals plus Markov-modulated bursts:
	// at seeded but unpredictable instants the rate multiplies by
	// BurstFactor for exponentially-distributed stretches.
	FlashCrowdArrivals ArrivalPattern = "flashcrowd"
)

// ArrivalPatterns lists every selectable arrival pattern.
func ArrivalPatterns() []ArrivalPattern {
	return []ArrivalPattern{SteadyArrivals, DiurnalArrivals, FlashCrowdArrivals}
}

// WindowReport is one rolling window of service metrics: arrival and
// completion flow, burst ratio, per-cluster utilization, ordered-output
// progress and sojourn percentiles, all computed over [Start, End).
type WindowReport = window.Report

// ServiceOptions configures an always-on streaming run. The embedded
// Options keep their meaning (Batches is ignored — a service has no batch
// count), and the zero value serves the paper test bed under diurnal
// arrivals with 10-minute metric windows until cancelled.
type ServiceOptions struct {
	Options

	// Arrivals selects the arrival process shape (default DiurnalArrivals).
	Arrivals ArrivalPattern
	// Flash-crowd shape, consulted only for FlashCrowdArrivals: the rate
	// multiplier while a burst is active (default 6), the mean burst length
	// (default 900 s) and the mean quiet gap between bursts (default 7200 s).
	BurstFactor     float64
	BurstMeanSec    float64
	BurstSpacingSec float64

	// WindowSec is the metric window length in virtual seconds (default
	// 600). Window boundaries are simulation events, so this also shapes
	// the deterministic trajectory — it cannot change across a restore.
	WindowSec float64
	// DurationSec bounds the served virtual time; batches arriving past it
	// are not admitted. Zero serves until MaxJobs, source exhaustion or
	// context cancellation.
	DurationSec float64
	// MaxJobs bounds how many jobs are admitted (zero: unbounded). It
	// cannot be combined with Restore: a job budget below the restored
	// prefix would corrupt the replay.
	MaxJobs int
	// RefitPeriodSec forces a QRSM refit this often (default 600; negative
	// disables the ticker). Like WindowSec, it is part of the deterministic
	// trajectory and survives restores unchanged.
	RefitPeriodSec float64

	// CheckpointAtEnd suspends the run at the DurationSec deadline instead
	// of draining it — in-flight transfers and queued work stay live in the
	// saved state — and makes Service.Checkpoint return a blob that a later
	// call can pass as Restore. Requires DurationSec > 0 and MaxJobs == 0.
	CheckpointAtEnd bool
	// Restore resumes a run from a checkpoint blob. The simulation-defining
	// configuration (everything except DurationSec, CheckpointAtEnd, Trace,
	// Audit and Verify, which are taken from this call) comes from the
	// blob, and DurationSec means additional serving time beyond what the
	// checkpointed run already served. Windows delivered before the
	// checkpoint are not redelivered; an Audit recorder likewise sees only
	// the continuation.
	Restore []byte
}

func (o ServiceOptions) normalizeService() ServiceOptions {
	o.Options = o.Options.Normalize()
	if o.Arrivals == "" {
		o.Arrivals = DiurnalArrivals
	}
	if o.WindowSec == 0 {
		o.WindowSec = 600
	}
	if o.RefitPeriodSec == 0 {
		o.RefitPeriodSec = 600
	}
	if o.Arrivals == FlashCrowdArrivals {
		if o.BurstFactor == 0 {
			o.BurstFactor = 6
		}
		if o.BurstMeanSec == 0 {
			o.BurstMeanSec = 900
		}
		if o.BurstSpacingSec == 0 {
			o.BurstSpacingSec = 7200
		}
	}
	return o
}

func (o ServiceOptions) validateService(restoring bool) error {
	if err := o.Options.validate(); err != nil {
		return err
	}
	switch o.Arrivals {
	case SteadyArrivals, DiurnalArrivals, FlashCrowdArrivals:
	default:
		return optErr("Arrivals", o.Arrivals, "is not a known arrival pattern")
	}
	switch {
	case o.WindowSec <= 0:
		return optErr("WindowSec", o.WindowSec, "must be positive")
	case o.DurationSec < 0:
		return optErr("DurationSec", o.DurationSec, "must not be negative")
	case o.MaxJobs < 0:
		return optErr("MaxJobs", o.MaxJobs, "must not be negative")
	}
	if o.Arrivals == FlashCrowdArrivals {
		switch {
		case o.BurstFactor < 1:
			return optErr("BurstFactor", o.BurstFactor, "must be at least 1")
		case o.BurstMeanSec <= 0:
			return optErr("BurstMeanSec", o.BurstMeanSec, "must be positive")
		case o.BurstSpacingSec <= 0:
			return optErr("BurstSpacingSec", o.BurstSpacingSec, "must be positive")
		}
	}
	if o.CheckpointAtEnd && (o.DurationSec <= 0 || o.MaxJobs != 0) {
		return optErr("CheckpointAtEnd", true, "requires DurationSec > 0 and MaxJobs == 0")
	}
	if restoring && o.MaxJobs != 0 {
		return optErr("MaxJobs", o.MaxJobs, "cannot be combined with Restore")
	}
	// Sharded placement snapshots per arrival batch; the streaming engine's
	// checkpoint/restore contract has no serialization for mid-batch commit
	// state, so Serve stays monolithic.
	if o.Shards != nil && o.Shards.Count > 1 {
		return optErr("Shards", o.Shards.Count, "streaming Serve does not support sharded scheduling")
	}
	return nil
}

// streamConfig maps the options onto the arrival process.
func (o ServiceOptions) streamConfig(bucket workload.Bucket) workload.StreamConfig {
	sc := workload.StreamConfig{
		Bucket:           bucket,
		Interval:         o.BatchIntervalSec,
		BaseJobsPerBatch: o.MeanJobsPerBatch,
		Seed:             o.WorkloadSeed,
	}
	switch o.Arrivals {
	case SteadyArrivals:
		base := o.MeanJobsPerBatch
		sc.Rate = func(float64) float64 { return base }
	case FlashCrowdArrivals:
		sc.Burst = &workload.BurstConfig{
			Factor:       o.BurstFactor,
			MeanDuration: o.BurstMeanSec,
			MeanGap:      o.BurstSpacingSec,
		}
	}
	return sc
}

// ServeReport is the end-of-run summary of a streaming service. The
// embedded Report carries the usual SLA metrics over the whole logical run
// (a restored run includes its replayed prefix).
type ServeReport struct {
	*Report
	Fed         int     // original jobs admitted
	FedBatches  int     // batches admitted, empty ones included
	Windows     int     // metric windows flushed
	VirtualTime float64 // virtual clock at stop, seconds
	StopCause   string  // "duration", "maxjobs", "cancelled", "source" or "suspended"
	// Fingerprint is the rolling FNV-64a hash of the trace's discrete
	// fields over TraceEvents events, continued across checkpoint/restore:
	// a split run and an unsplit run of the same configuration finish with
	// identical fingerprints.
	Fingerprint uint64
	TraceEvents uint64
}

// Service is a running streaming simulation. Consume Reports (or call Wait,
// which drains them) — window delivery applies backpressure, so an
// unconsumed stream eventually blocks the simulation until the context is
// cancelled.
type Service struct {
	reports    chan WindowReport
	done       chan struct{}
	rep        *ServeReport
	err        error
	checkpoint []byte
}

// Reports streams each metric window as the simulation closes it. The
// channel closes when the run ends.
func (s *Service) Reports() <-chan WindowReport { return s.reports }

// Wait drains any unread window reports and blocks until the run ends,
// returning the final report. Cancellation is a clean stop, not an error:
// the run drains its admitted jobs and reports StopCause "cancelled".
func (s *Service) Wait() (*ServeReport, error) {
	for range s.reports {
	}
	<-s.done
	return s.rep, s.err
}

// Checkpoint returns the checkpoint blob of a finished run that was
// started with CheckpointAtEnd. Call it after Wait.
func (s *Service) Checkpoint() ([]byte, error) {
	select {
	case <-s.done:
	default:
		return nil, errors.New("cloudburst: service still running; call Wait first")
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.checkpoint == nil {
		return nil, errors.New("cloudburst: run was not suspended for a checkpoint; set CheckpointAtEnd")
	}
	return s.checkpoint, nil
}

// Serve starts an always-on streaming run: an open-ended arrival process
// (diurnal by default, optionally with flash crowds) drives the same
// simulated scheduler as Run, rolling-window metrics stream out on
// Service.Reports, and the run ends on its configured budget or when ctx
// fires. Runs are deterministic: identical ServiceOptions yield identical
// window streams, reports and trace fingerprints.
//
// With CheckpointAtEnd the run suspends at its deadline and
// Service.Checkpoint returns a blob; passing that blob as Restore continues
// the service exactly where it left off — the split run's trace fingerprint
// matches an unsplit run of the combined duration bit for bit.
func Serve(ctx context.Context, o ServiceOptions) (*Service, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resume *engine.Checkpoint
	if len(o.Restore) > 0 {
		cf, err := decodeCheckpoint(o.Restore)
		if err != nil {
			return nil, err
		}
		merged := cf.Service
		merged.DurationSec = o.DurationSec
		merged.MaxJobs = o.MaxJobs
		merged.CheckpointAtEnd = o.CheckpointAtEnd
		merged.Trace = o.Trace
		merged.Audit = o.Audit
		merged.Verify = o.Verify
		o = merged
		eng := cf.Engine
		resume = &eng
	}
	o = o.normalizeService()
	if err := o.validateService(resume != nil); err != nil {
		return nil, err
	}
	bucket, err := o.bucket()
	if err != nil {
		return nil, err
	}
	schd, err := o.scheduler()
	if err != nil {
		return nil, err
	}
	src, err := workload.NewStream(o.streamConfig(bucket))
	if err != nil {
		return nil, err
	}

	cfg := o.engineConfig()
	var rec *TraceRecorder
	tracer := o.Trace
	if o.Audit {
		rec = NewTraceRecorder()
		tracer = MultiTracer(tracer, rec)
	}
	cfg.Tracer = tracer

	var chk *invariant.Checker
	s := &Service{
		reports: make(chan WindowReport, 16),
		done:    make(chan struct{}),
	}
	sc := engine.StreamConfig{
		Window:               o.WindowSec,
		Duration:             o.DurationSec,
		MaxJobs:              o.MaxJobs,
		RefitPeriod:          o.RefitPeriodSec,
		SuspendForCheckpoint: o.CheckpointAtEnd,
		Resume:               resume,
		OnWindow: func(rep window.Report) {
			select {
			case s.reports <- rep:
			case <-ctx.Done():
			}
		},
	}
	if o.Verify {
		chk = invariant.New()
		sc.Observer = chk
	}

	go s.run(ctx, cfg, schd, src, sc, o, rec, chk)
	return s, nil
}

func (s *Service) run(ctx context.Context, cfg engine.Config, schd sched.Scheduler, src workload.Source, sc engine.StreamConfig, o ServiceOptions, rec *TraceRecorder, chk *invariant.Checker) {
	defer close(s.done)
	res, err := engine.Serve(ctx, cfg, schd, src, sc)
	close(s.reports)
	if err != nil {
		s.err = err
		return
	}
	if chk != nil {
		// A suspended run legitimately has open transfers and busy
		// machines — its continuation owns them — so only a drained run
		// takes the end-of-stream checks.
		vs := chk.Current()
		if res.StopCause != engine.StopSuspended {
			vs = chk.Finish()
		}
		if len(vs) > 0 {
			s.err = &VerifyError{Violations: toViolations(vs), Total: chk.Total()}
			return
		}
	}
	if res.Checkpoint != nil {
		blob, err := encodeCheckpoint(checkpointFile{Service: o, Engine: *res.Checkpoint})
		if err != nil {
			s.err = err
			return
		}
		s.checkpoint = blob
	}
	s.rep = &ServeReport{
		Report:      newReport(o.Options, res.Result, rec),
		Fed:         res.Fed,
		FedBatches:  res.FedBatches,
		Windows:     res.Windows,
		VirtualTime: res.VirtualTime,
		StopCause:   res.StopCause,
		Fingerprint: res.Fingerprint,
		TraceEvents: res.TraceEvents,
	}
}
