package cloudburst

import (
	"cloudburst/internal/cluster"
	"cloudburst/internal/engine"
	"cloudburst/internal/netsim"
)

// FaultOptions enables deterministic fault injection on a run. Three
// independent fault sources can be armed, each disabled while its MTBF is
// zero; every affected job re-enters the pipeline through the recovery
// state machine (bounded retries with exponential backoff, slack-rule
// re-admission, IC fallback of last resort), so no job is ever lost — even
// when the external cloud is revoked entirely.
type FaultOptions struct {
	// ECRevocationMTBF is the mean time in seconds between spot-style
	// revocations of external-cloud machines. Revocations are permanent:
	// the machine never comes back and its rental ends.
	ECRevocationMTBF float64
	// ECRevocationWarning is the advance notice each revocation gives, like
	// real spot markets: the machine accepts no new work and its current
	// task races the deadline. Zero revokes instantly.
	ECRevocationWarning float64

	// ICCrashMTBF is the mean time between internal-cloud machine crashes.
	// IC crashes are always repairable — the IC is the fallback of last
	// resort and cannot lose machines permanently.
	ICCrashMTBF float64
	// ICCrashMTTR is the mean repair time of a crashed IC machine
	// (default 300 s).
	ICCrashMTTR float64

	// TransferStallMTBF is the mean time between stalls on the primary EC
	// links: the transfer freezes at zero rate until the sender timeout
	// aborts it.
	TransferStallMTBF float64
	// TransferStallTimeout is the sender timeout that aborts a stalled
	// transfer (default 120 s).
	TransferStallTimeout float64

	// MaxRetries bounds EC re-admissions per job before it falls back to
	// the internal cloud. Zero means the default of 2; set a negative value
	// to disable retries and fall back immediately.
	MaxRetries int
	// RetryBackoff is the base delay before a retry; attempt n waits
	// RetryBackoff * 2^(n-1) seconds (default 30).
	RetryBackoff float64

	// Seed drives the dedicated fault RNG, independent of the workload and
	// network streams: the same FaultOptions and seeds reproduce the exact
	// same failure schedule.
	Seed int64
}

// normalize fills the documented defaults, leaving disabled sources alone.
func (f FaultOptions) normalize() FaultOptions {
	if f.ICCrashMTBF > 0 && f.ICCrashMTTR == 0 {
		f.ICCrashMTTR = 300
	}
	if f.TransferStallMTBF > 0 && f.TransferStallTimeout == 0 {
		f.TransferStallTimeout = 120
	}
	if f.MaxRetries == 0 {
		f.MaxRetries = 2
	}
	if f.RetryBackoff == 0 {
		f.RetryBackoff = 30
	}
	return f
}

// validate rejects out-of-domain fault options with typed *OptionError
// values, mirroring Options.validate.
func (f FaultOptions) validate() error {
	switch {
	case f.ECRevocationMTBF < 0:
		return optErr("Faults.ECRevocationMTBF", f.ECRevocationMTBF, "must not be negative")
	case f.ECRevocationWarning < 0:
		return optErr("Faults.ECRevocationWarning", f.ECRevocationWarning, "must not be negative")
	case f.ICCrashMTBF < 0:
		return optErr("Faults.ICCrashMTBF", f.ICCrashMTBF, "must not be negative")
	case f.ICCrashMTTR < 0:
		return optErr("Faults.ICCrashMTTR", f.ICCrashMTTR, "must not be negative")
	case f.TransferStallMTBF < 0:
		return optErr("Faults.TransferStallMTBF", f.TransferStallMTBF, "must not be negative")
	case f.TransferStallTimeout < 0:
		return optErr("Faults.TransferStallTimeout", f.TransferStallTimeout, "must not be negative")
	case f.RetryBackoff < 0:
		return optErr("Faults.RetryBackoff", f.RetryBackoff, "must not be negative")
	}
	return nil
}

// engineConfig translates the public fault options into the engine's
// grouped fault configuration.
func (f FaultOptions) engineConfig() *engine.FaultConfig {
	f = f.normalize()
	fc := &engine.FaultConfig{
		MaxRetries:   f.MaxRetries,
		RetryBackoff: f.RetryBackoff,
		Seed:         f.Seed,
	}
	if f.ECRevocationMTBF > 0 {
		fc.ECRevocation = cluster.FaultModel{
			MTBF:     f.ECRevocationMTBF,
			WarnLead: f.ECRevocationWarning,
		}
	}
	if f.ICCrashMTBF > 0 {
		fc.ICCrash = cluster.FaultModel{
			MTBF: f.ICCrashMTBF,
			MTTR: f.ICCrashMTTR,
		}
	}
	if f.TransferStallMTBF > 0 {
		fc.TransferStalls = netsim.StallModel{
			MeanTimeBetween: f.TransferStallMTBF,
			Timeout:         f.TransferStallTimeout,
		}
	}
	return fc
}
